//! `zen2-lint`: workspace determinism & contract static analysis.
//!
//! The reproduction's headline guarantee is a determinism contract —
//! results are bit-identical across worker counts, shard sizes, and
//! checkpoint interrupt/resume points (see `docs/ARCHITECTURE.md` and
//! `docs/SWEEPS.md`). The bug classes that have broken it, or nearly
//! did, are all statically recognizable; this crate makes the contract
//! machine-checked on every PR instead of example-tested after the
//! fact. The rule catalog, suppression syntax, and ratchet-file format
//! are documented in `docs/LINTS.md`.
//!
//! No dependencies, by design: a hand-rolled lexer ([`lexer`]) strips
//! comments and literals, and the rules ([`rules`]) run over tokens.
//!
//! Findings can be suppressed inline with a justified annotation:
//!
//! ```text
//! // zen2-lint: allow(no-unordered-iteration) — membership-only duplicate check
//! ```
//!
//! An own-line annotation covers the next line; a trailing annotation
//! covers its own line. Reasons are mandatory, unknown rule names are
//! findings, and suppressions that stop matching anything are findings
//! too — annotations can never silently rot.

pub mod deadpub;
pub mod graph;
pub mod items;
pub mod lexer;
pub mod ratchet;
pub mod rules;
pub mod schema;
pub mod semantic;
pub mod workspace;

use std::fmt;
use std::fs;
use std::path::Path;

use lexer::{lex, test_line_ranges, Comment, Token};

/// One rule violation at a specific source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// 1-based line.
    pub line: usize,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.rel, self.line, self.rule, self.message)
    }
}

/// A parsed `// zen2-lint: allow(…) — reason` annotation.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Line the comment sits on.
    pub line: usize,
    /// Line whose findings it suppresses.
    pub covers_line: usize,
    pub rules: Vec<String>,
    pub reason: String,
}

/// One lexed source file plus everything the rules need to scope
/// themselves: test-region lines, suppressions, and the relative path.
pub struct SourceFile {
    pub rel: String,
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
    /// The parsed item tree ([`items`]) — what the semantic rules walk.
    pub items: Vec<items::Item>,
    test_ranges: Vec<(usize, usize)>,
    pub suppressions: Vec<Suppression>,
    /// Malformed-annotation findings discovered while parsing.
    suppression_findings: Vec<Finding>,
}

impl SourceFile {
    /// Lexes `text` as the file at workspace-relative path `rel`.
    pub fn parse(rel: &str, text: &str) -> SourceFile {
        let lexed = lex(text);
        let test_ranges = test_line_ranges(&lexed.tokens);
        let items = items::parse_items(&lexed.tokens);
        let mut f = SourceFile {
            rel: rel.to_string(),
            tokens: lexed.tokens,
            comments: lexed.comments,
            items,
            test_ranges,
            suppressions: Vec::new(),
            suppression_findings: Vec::new(),
        };
        let (supps, bad) = parse_suppressions(&f);
        f.suppressions = supps;
        f.suppression_findings = bad;
        f
    }

    /// Whole-file test code: integration tests, benches, and the
    /// `#[cfg(test)] mod proptests;` companion files.
    pub fn is_test_file(&self) -> bool {
        self.rel.starts_with("tests/")
            || self.rel.contains("/tests/")
            || self.rel.contains("/benches/")
            || self.rel.ends_with("/proptests.rs")
    }

    /// True when `line` is test-only code (a test file, or inside a
    /// `#[cfg(test)]` item).
    pub fn is_test_code(&self, line: usize) -> bool {
        self.is_test_file() || self.test_ranges.iter().any(|&(a, b)| (a..=b).contains(&line))
    }

    fn finding(&self, rule: &'static str, line: usize, message: impl Into<String>) -> Finding {
        Finding { rule, rel: self.rel.clone(), line, message: message.into() }
    }
}

/// The marker every annotation starts with (anywhere in a `//` comment).
const MARKER: &str = "zen2-lint:";

fn parse_suppressions(f: &SourceFile) -> (Vec<Suppression>, Vec<Finding>) {
    let mut supps = Vec::new();
    let mut bad = Vec::new();
    for c in &f.comments {
        // Doc comments (`///…` lexes as text starting with `/`, `//!`
        // with `!`) are prose — annotation examples in rustdoc must not
        // count as live suppressions.
        if c.text.starts_with('/') || c.text.starts_with('!') {
            continue;
        }
        let Some(pos) = c.text.find(MARKER) else { continue };
        let rest = c.text[pos + MARKER.len()..].trim_start();
        let mut fail = |why: &str| {
            bad.push(f.finding(
                rules::SUPPRESSION,
                c.line,
                format!(
                    "malformed annotation ({why}); expected `zen2-lint: allow(<rule>) — <reason>`"
                ),
            ));
        };
        let Some(args) = rest.strip_prefix("allow(") else {
            fail("missing `allow(`");
            continue;
        };
        let Some(close) = args.find(')') else {
            fail("unclosed `allow(`");
            continue;
        };
        let names: Vec<String> = args[..close].split(',').map(|s| s.trim().to_string()).collect();
        if let Some(unknown) =
            names.iter().find(|n| n.is_empty() || !rules::ALL_RULES.contains(&n.as_str()))
        {
            fail(&format!("unknown rule `{unknown}`"));
            continue;
        }
        // The reason follows a dash of any flavor (—, –, --, -).
        let mut reason = args[close + 1..].trim_start();
        for dash in ["—", "–", "--", "-"] {
            if let Some(r) = reason.strip_prefix(dash) {
                reason = r;
                break;
            }
        }
        let reason = reason.trim();
        if reason.is_empty() {
            fail("missing reason");
            continue;
        }
        supps.push(Suppression {
            line: c.line,
            covers_line: if c.own_line { c.line + 1 } else { c.line },
            rules: names,
            reason: reason.to_string(),
        });
    }
    (supps, bad)
}

/// Result of a full check: surviving findings (sorted, deduplicated),
/// plus counts for the summary line.
pub struct Report {
    pub findings: Vec<Finding>,
    pub suppressed: usize,
    pub files: usize,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "zen2-lint: {} finding(s), {} suppressed, {} files scanned\n",
            self.findings.len(),
            self.suppressed,
            self.files
        ));
        out
    }

    /// Findings as a JSON array (`rule`/`file`/`line`/`reason` per
    /// entry) for CI annotations and artifacts. Hand-rolled like the
    /// sim's `snapshot.rs` writer — the crate stays dependency-free.
    pub fn render_json(&self) -> String {
        if self.findings.is_empty() {
            return "[]\n".to_string();
        }
        let mut out = String::from("[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n  {{\"rule\": {}, \"file\": {}, \"line\": {}, \"reason\": {}}}",
                json_str(f.rule),
                json_str(&f.rel),
                f.line,
                json_str(&f.message)
            ));
        }
        out.push_str("\n]\n");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Everything `check_files` needs beyond the sources: the committed
/// baselines. The two workspace-scoped passes are optional so fixture
/// tests can run single files without the whole tree's context —
/// `None` disables the pass entirely.
pub struct CheckContext {
    pub ratchet: ratchet::Baseline,
    /// Dead-pub baseline; `None` disables the reachability pass.
    pub deadpub: Option<deadpub::Baseline>,
    /// Snapshot-schema lock: `None` disables the pass, `Some(None)`
    /// runs it against a missing lock file (itself a finding).
    pub schema_lock: Option<Option<schema::Lock>>,
}

impl CheckContext {
    /// Per-file rules plus the panic ratchet only — what fixture tests
    /// and single-file checks use.
    pub fn local(ratchet: ratchet::Baseline) -> CheckContext {
        CheckContext { ratchet, deadpub: None, schema_lock: None }
    }
}

/// Runs the whole rule set over `files` against the baselines in `ctx`.
///
/// Suppressions apply to the line they cover, for the rules they name;
/// `panic-ratchet`, `dead-pub`, and `snapshot-schema` findings are
/// exempt (each has its own committed ledger — an inline allow would
/// just be a second, vaguer one). Unused suppressions become findings
/// so annotations track the code.
pub fn check_files(files: &[SourceFile], ctx: &CheckContext) -> Report {
    let mut findings = Vec::new();
    for f in files {
        findings.extend(rules::lint_file(f));
    }
    findings.extend(rules::snapshot_coverage(files));

    let mut suppressed = 0;
    let mut used: Vec<Vec<bool>> =
        files.iter().map(|f| vec![false; f.suppressions.len()]).collect();
    findings.retain(|fd| {
        let Some(fi) = files.iter().position(|f| f.rel == fd.rel) else { return true };
        for (si, s) in files[fi].suppressions.iter().enumerate() {
            if s.covers_line == fd.line && s.rules.iter().any(|r| r == fd.rule) {
                used[fi][si] = true;
                suppressed += 1;
                return false;
            }
        }
        true
    });

    findings.extend(rules::panic_ratchet(files, &ctx.ratchet));
    if let Some(dp) = &ctx.deadpub {
        findings.extend(graph::dead_pub(files, dp));
    }
    if let Some(lock) = &ctx.schema_lock {
        findings.extend(schema::check(files, lock.as_ref()));
    }
    for (fi, f) in files.iter().enumerate() {
        findings.extend(f.suppression_findings.iter().cloned());
        for (si, s) in f.suppressions.iter().enumerate() {
            if !used[fi][si] {
                findings.push(f.finding(
                    rules::SUPPRESSION,
                    s.line,
                    format!(
                        "unused suppression for `{}`: nothing on line {} triggers it — remove the annotation",
                        s.rules.join(", "),
                        s.covers_line
                    ),
                ));
            }
        }
    }

    findings.sort_by(|a, b| {
        (&a.rel, a.line, a.rule, &a.message).cmp(&(&b.rel, b.line, b.rule, &b.message))
    });
    findings.dedup();
    Report { findings, suppressed, files: files.len() }
}

/// Loads the tree under `root` and checks it: the entry point shared by
/// the CLI and the workspace meta-test.
pub fn run_check(root: &Path) -> Result<Report, String> {
    let files = load_tree(root)?;
    let ratchet = match fs::read_to_string(root.join(workspace::RATCHET_FILE)) {
        Ok(text) => ratchet::parse(&text)?,
        Err(_) => ratchet::Baseline::empty(),
    };
    let deadpub = match fs::read_to_string(root.join(workspace::DEADPUB_FILE)) {
        Ok(text) => deadpub::parse(&text)?,
        Err(_) => deadpub::Baseline::empty(),
    };
    let schema_lock = match fs::read_to_string(root.join(workspace::SCHEMA_LOCK_FILE)) {
        Ok(text) => Some(schema::parse_lock(&text)?),
        Err(_) => None,
    };
    let ctx = CheckContext { ratchet, deadpub: Some(deadpub), schema_lock: Some(schema_lock) };
    Ok(check_files(&files, &ctx))
}

/// Lexes every lintable file under `root`.
pub fn load_tree(root: &Path) -> Result<Vec<SourceFile>, String> {
    let listed =
        workspace::collect(root).map_err(|e| format!("scanning {}: {e}", root.display()))?;
    let mut files = Vec::with_capacity(listed.len());
    for (path, rel) in listed {
        let text =
            fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        files.push(SourceFile::parse(&rel, &text));
    }
    Ok(files)
}
