//! A minimal Rust lexer.
//!
//! Just enough lexing for line- and token-scoped lint rules: comments,
//! string/char literals and doc text are stripped into their own buckets
//! so a rule pattern can never fire inside prose, while every token
//! keeps the 1-based line it started on. The grammar subset handled:
//!
//! - line (`//`) and nested block (`/* */`) comments — collected, since
//!   suppression annotations live in line comments;
//! - string literals: `"…"` (with escapes), `b"…"`, and raw forms
//!   `r"…"`, `r#"…"#`, `br##"…"##` with any hash depth;
//! - char/byte-char literals (`'a'`, `'\n'`, `'\u{1F600}'`, `b'x'`)
//!   disambiguated from lifetimes (`'a`, `'static`, `'_`);
//! - raw identifiers (`r#fn` lexes as the identifier `fn`);
//! - identifiers, numbers, and punctuation (only `::` is fused into a
//!   single token — rules match on path shapes like `thread :: spawn`).
//!
//! This is deliberately not a full lexer (no float-exponent signs, no
//! unicode identifiers); mis-lexing those splits a number into extra
//! tokens, which no rule pattern can match on, so rules stay sound.

/// What a [`Token`] is, as far as the rules care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    Ident,
    Punct,
    Str,
    Char,
    Num,
    Lifetime,
}

/// One lexed token with the 1-based source line it started on.
#[derive(Debug, Clone)]
pub struct Token {
    pub text: String,
    pub kind: TokenKind,
    pub line: usize,
}

/// One `//` comment. `own_line` is true when nothing but whitespace
/// precedes it — such comments annotate the *next* line, trailing
/// comments annotate their own.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: usize,
    pub own_line: bool,
}

/// The output of [`lex`]: code tokens and line comments, separately.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphabetic()
}

fn is_ident_cont(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric()
}

/// Byte length of the UTF-8 character starting at `b[i]`.
fn char_len(b: &[u8], i: usize) -> usize {
    match b[i] {
        c if c < 0x80 => 1,
        c if c >= 0xF0 => 4,
        c if c >= 0xE0 => 3,
        _ => 2,
    }
}

/// If `b[i..]` opens a raw-string body (`#`* then `"`), returns
/// `(hash_count, index_of_first_body_byte)`.
fn raw_string_open(b: &[u8], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    if j < b.len() && b[j] == b'"' {
        Some((j - i, j + 1))
    } else {
        None
    }
}

/// Tokenizes `src`. Never panics on malformed input — an unterminated
/// literal simply swallows the rest of the file, which is the same
/// thing rustc would reject anyway.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0;
    let mut line = 1;
    // Whether any token started on the current line (for `own_line`).
    let mut line_has_code = false;

    macro_rules! push {
        ($kind:expr, $text:expr) => {{
            out.tokens.push(Token { text: $text, kind: $kind, line });
            line_has_code = true;
        }};
    }

    while i < b.len() {
        let c = b[i];
        // Newlines and whitespace.
        if c == b'\n' {
            line += 1;
            line_has_code = false;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            let start = i + 2;
            let mut j = start;
            while j < b.len() && b[j] != b'\n' {
                j += 1;
            }
            out.comments.push(Comment {
                text: src[start..j].to_string(),
                line,
                own_line: !line_has_code,
            });
            i = j;
            continue;
        }
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let mut depth = 1;
            let mut j = i + 2;
            while j < b.len() && depth > 0 {
                if b[j] == b'\n' {
                    line += 1;
                    line_has_code = false;
                    j += 1;
                } else if b[j] == b'/' && j + 1 < b.len() && b[j + 1] == b'*' {
                    depth += 1;
                    j += 2;
                } else if b[j] == b'*' && j + 1 < b.len() && b[j + 1] == b'/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            i = j;
            continue;
        }
        // Plain and byte strings / raw strings / raw idents / byte chars.
        if c == b'"' {
            i = scan_string(src, b, i + 1, &mut line, &mut out);
            continue;
        }
        if c == b'b' || c == b'r' {
            if c == b'b' && i + 1 < b.len() && b[i + 1] == b'\'' {
                i = scan_char_or_lifetime(src, b, i + 2, &mut out, line, true);
                line_has_code = true;
                continue;
            }
            if c == b'b' && i + 1 < b.len() && b[i + 1] == b'"' {
                i = scan_string(src, b, i + 2, &mut line, &mut out);
                continue;
            }
            let raw_at = if c == b'r' {
                i + 1
            } else if i + 1 < b.len() && b[i + 1] == b'r' {
                i + 2
            } else {
                usize::MAX
            };
            if raw_at != usize::MAX {
                if let Some((hashes, body)) = raw_string_open(b, raw_at) {
                    i = scan_raw_string(src, b, body, hashes, &mut line, &mut out);
                    continue;
                }
            }
            if c == b'r' && i + 2 < b.len() && b[i + 1] == b'#' && is_ident_start(b[i + 2]) {
                let start = i + 2;
                let mut j = start;
                while j < b.len() && is_ident_cont(b[j]) {
                    j += 1;
                }
                push!(TokenKind::Ident, src[start..j].to_string());
                i = j;
                continue;
            }
            // Falls through: an ordinary identifier starting with b/r.
        }
        // Char literal or lifetime.
        if c == b'\'' {
            i = scan_char_or_lifetime(src, b, i + 1, &mut out, line, false);
            line_has_code = true;
            continue;
        }
        // Identifier.
        if is_ident_start(c) {
            let start = i;
            let mut j = i + 1;
            while j < b.len() && is_ident_cont(b[j]) {
                j += 1;
            }
            push!(TokenKind::Ident, src[start..j].to_string());
            i = j;
            continue;
        }
        // Number.
        if c.is_ascii_digit() {
            let start = i;
            let mut j = i + 1;
            while j < b.len() {
                if is_ident_cont(b[j]) {
                    j += 1;
                } else if b[j] == b'.' && j + 1 < b.len() && b[j + 1].is_ascii_digit() {
                    j += 2;
                } else {
                    break;
                }
            }
            push!(TokenKind::Num, src[start..j].to_string());
            i = j;
            continue;
        }
        // Punctuation; only `::` is fused.
        if c == b':' && i + 1 < b.len() && b[i + 1] == b':' {
            push!(TokenKind::Punct, "::".to_string());
            i += 2;
            continue;
        }
        if c < 0x80 {
            push!(TokenKind::Punct, (c as char).to_string());
            i += 1;
        } else {
            // Stray non-ASCII outside a literal (shouldn't happen in
            // this codebase); skip the whole character.
            i += char_len(b, i);
        }
    }
    out
}

/// Scans a `"…"` body starting at `j` (past the opening quote); returns
/// the index just past the closing quote. Multi-line strings advance
/// `line`.
fn scan_string(src: &str, b: &[u8], j: usize, line: &mut usize, out: &mut Lexed) -> usize {
    let start_line = *line;
    let start = j;
    let mut k = j;
    while k < b.len() {
        match b[k] {
            b'\\' => k += 2,
            b'"' => {
                out.tokens.push(Token {
                    text: src[start..k].to_string(),
                    kind: TokenKind::Str,
                    line: start_line,
                });
                return k + 1;
            }
            b'\n' => {
                *line += 1;
                k += 1;
            }
            _ => k += 1,
        }
    }
    k
}

/// Scans a raw-string body starting at `j`, terminated by `"` plus
/// `hashes` hash marks; returns the index just past the terminator.
fn scan_raw_string(
    src: &str,
    b: &[u8],
    j: usize,
    hashes: usize,
    line: &mut usize,
    out: &mut Lexed,
) -> usize {
    let start_line = *line;
    let start = j;
    let mut k = j;
    while k < b.len() {
        if b[k] == b'\n' {
            *line += 1;
            k += 1;
            continue;
        }
        if b[k] == b'"'
            && b.len() - (k + 1) >= hashes
            && b[k + 1..k + 1 + hashes].iter().all(|&h| h == b'#')
        {
            out.tokens.push(Token {
                text: src[start..k].to_string(),
                kind: TokenKind::Str,
                line: start_line,
            });
            return k + 1 + hashes;
        }
        k += 1;
    }
    k
}

/// Disambiguates a char/byte-char literal from a lifetime. `j` points
/// just past the opening quote. `forced_char` is set for `b'…'`, which
/// can never be a lifetime.
fn scan_char_or_lifetime(
    src: &str,
    b: &[u8],
    j: usize,
    out: &mut Lexed,
    line: usize,
    forced_char: bool,
) -> usize {
    if j >= b.len() {
        return j;
    }
    if b[j] == b'\\' {
        // Escaped char literal: '\n', '\'', '\u{…}'.
        let mut k = j + 1;
        if k < b.len() && b[k] == b'u' && k + 1 < b.len() && b[k + 1] == b'{' {
            k += 2;
            while k < b.len() && b[k] != b'}' {
                k += 1;
            }
            k += 1;
        } else if k < b.len() && b[k] == b'x' {
            // `\xFF`: the marker plus two hex digits.
            k += 3;
        } else {
            k += 1;
        }
        let end = if k < b.len() && b[k] == b'\'' { k + 1 } else { k };
        out.tokens.push(Token {
            text: src[j..k.min(b.len())].to_string(),
            kind: TokenKind::Char,
            line,
        });
        return end;
    }
    if is_ident_start(b[j]) {
        let mut k = j + 1;
        while k < b.len() && is_ident_cont(b[k]) {
            k += 1;
        }
        if k < b.len() && b[k] == b'\'' {
            out.tokens.push(Token { text: src[j..k].to_string(), kind: TokenKind::Char, line });
            return k + 1;
        }
        let kind = if forced_char { TokenKind::Char } else { TokenKind::Lifetime };
        out.tokens.push(Token { text: src[j..k].to_string(), kind, line });
        return k;
    }
    // Punctuation (or non-ASCII) char literal: '(' , 'é'.
    let k = j + char_len(b, j);
    if k < b.len() && b[k] == b'\'' {
        out.tokens.push(Token { text: src[j..k].to_string(), kind: TokenKind::Char, line });
        return k + 1;
    }
    out.tokens.push(Token { text: "'".to_string(), kind: TokenKind::Punct, line });
    j
}

/// Line ranges (1-based, inclusive) covered by `#[cfg(test)]` items.
///
/// Finds every attribute of the shape `#[cfg(… test …)]`, then extends
/// over the attributed item's body: attributes that follow are skipped,
/// and the region runs to the matching `}` of the first brace opened
/// (or to the `;` for body-less items like `mod tests;`).
pub fn test_line_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let Some(after_attr) = cfg_test_attr_end(tokens, i) else {
            i += 1;
            continue;
        };
        let start_line = tokens[i].line;
        let mut j = after_attr;
        // Skip any further attributes on the same item.
        while j + 1 < tokens.len() && tokens[j].text == "#" && tokens[j + 1].text == "[" {
            j = match matching(tokens, j + 1, "[", "]") {
                Some(close) => close + 1,
                None => tokens.len(),
            };
        }
        // Find the item's body: the first `{` at this level (a `;`
        // first means a body-less item — the region is just its line).
        let mut end_line = tokens.get(j).map_or(start_line, |t| t.line);
        while j < tokens.len() {
            if tokens[j].text == ";" {
                end_line = tokens[j].line;
                j += 1;
                break;
            }
            if tokens[j].text == "{" {
                match matching(tokens, j, "{", "}") {
                    Some(close) => {
                        end_line = tokens[close].line;
                        j = close + 1;
                    }
                    None => {
                        end_line = tokens.last().map_or(end_line, |t| t.line);
                        j = tokens.len();
                    }
                }
                break;
            }
            j += 1;
        }
        ranges.push((start_line, end_line));
        i = j.max(i + 1);
    }
    ranges
}

/// If `tokens[i..]` starts a `#[cfg(…)]` attribute whose argument list
/// mentions `test`, returns the index just past the closing `]`.
fn cfg_test_attr_end(tokens: &[Token], i: usize) -> Option<usize> {
    if tokens.get(i)?.text != "#"
        || tokens.get(i + 1)?.text != "["
        || tokens.get(i + 2)?.text != "cfg"
    {
        return None;
    }
    let close = matching(tokens, i + 1, "[", "]")?;
    let mentions_test =
        tokens[i + 3..close].iter().any(|t| t.kind == TokenKind::Ident && t.text == "test");
    if mentions_test {
        Some(close + 1)
    } else {
        None
    }
}

/// Index of the token closing the bracket opened at `open_idx`.
pub fn matching(tokens: &[Token], open_idx: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open_idx) {
        if t.text == open {
            depth += 1;
        } else if t.text == close {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    /// Only idents/punctuation can trigger rules; literal *content*
    /// stays in `Str`/`Char` tokens, which the matchers skip by kind.
    fn code_texts(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| matches!(t.kind, TokenKind::Ident | TokenKind::Punct))
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_do_not_leak_tokens() {
        let src = r##"
            // thread::spawn in a comment
            /* Instant in /* a nested */ block */
            let s = "thread::spawn";
            let r = r#"SystemTime"#;
            let c = 'I';
        "##;
        let toks = code_texts(src);
        assert!(!toks.iter().any(|t| t == "spawn" || t == "Instant" || t == "SystemTime"));
        assert!(toks.contains(&"let".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> &'static str { let c = 'x'; x }");
        let lifetimes: Vec<_> =
            lexed.tokens.iter().filter(|t| t.kind == TokenKind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 3);
        let chars: Vec<_> = lexed.tokens.iter().filter(|t| t.kind == TokenKind::Char).collect();
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].text, "x");
    }

    #[test]
    fn escaped_char_literals() {
        for src in ["'\\''", "'\\n'", "'\\u{1F600}'", "b'\\xFF'"] {
            let lexed = lex(src);
            assert_eq!(lexed.tokens.len(), 1, "{src}");
            assert_eq!(lexed.tokens[0].kind, TokenKind::Char, "{src}");
        }
    }

    #[test]
    fn line_numbers_and_own_line_comments() {
        let src = "let a = 1; // trailing\n// own line\nlet b = 2;\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(!lexed.comments[0].own_line);
        assert_eq!(lexed.comments[0].line, 1);
        assert!(lexed.comments[1].own_line);
        assert_eq!(lexed.comments[1].line, 2);
        let b_tok = lexed.tokens.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b_tok.line, 3);
    }

    #[test]
    fn double_colon_is_one_token() {
        let toks = texts("std::thread::spawn");
        assert_eq!(toks, ["std", "::", "thread", "::", "spawn"]);
    }

    #[test]
    fn cfg_test_regions_cover_the_module_body() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let lexed = lex(src);
        let ranges = test_line_ranges(&lexed.tokens);
        assert_eq!(ranges, vec![(2, 5)]);
    }

    #[test]
    fn cfg_all_test_counts_and_bodyless_items_end_at_semicolon() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod proptests;\nfn live() {}\n";
        let ranges = test_line_ranges(&lex(src).tokens);
        assert_eq!(ranges, vec![(1, 2)]);
    }

    #[test]
    fn raw_idents_lex_as_plain_idents() {
        let toks = texts("r#fn r#type regular");
        assert_eq!(toks, ["fn", "type", "regular"]);
    }
}
