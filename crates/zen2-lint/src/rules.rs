//! The rule set: each rule targets a hazard class that has broken (or
//! could silently break) the workspace determinism contract.
//!
//! Rules are token-scoped — they run over the lexed token stream of
//! each file ([`crate::SourceFile`]), never over raw text, so nothing
//! fires inside comments, docs, or string literals. `docs/LINTS.md` is
//! the user-facing catalog; keep the two in sync.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Token, TokenKind};
use crate::ratchet::Baseline;
use crate::{Finding, SourceFile};

pub const NO_WALLCLOCK: &str = "no-wallclock";
pub const NO_THREAD_ESCAPE: &str = "no-thread-escape";
pub const NO_UNORDERED_ITERATION: &str = "no-unordered-iteration";
pub const NO_DEBUG_KEYING: &str = "no-debug-keying";
pub const SNAPSHOT_COVERAGE: &str = "snapshot-coverage";
pub const PANIC_RATCHET: &str = "panic-ratchet";
pub const SEED_DISCIPLINE: &str = "seed-discipline";
pub const FLOAT_ORDER: &str = "float-order";
pub const SNAPSHOT_SCHEMA: &str = "snapshot-schema";
pub const DEAD_PUB: &str = "dead-pub";
/// Engine-level findings about the suppression comments themselves.
pub const SUPPRESSION: &str = "suppression";

/// Every rule name, for validating `allow(…)` lists.
pub const ALL_RULES: &[&str] = &[
    NO_WALLCLOCK,
    NO_THREAD_ESCAPE,
    NO_UNORDERED_ITERATION,
    NO_DEBUG_KEYING,
    SNAPSHOT_COVERAGE,
    PANIC_RATCHET,
    SEED_DISCIPLINE,
    FLOAT_ORDER,
    SNAPSHOT_SCHEMA,
    DEAD_PUB,
    SUPPRESSION,
];

/// The one file allowed to read the wall clock: every timestamp a
/// telemetry sink (or a bench timer) wants goes through
/// `zen2_obs::clock`, so host time stays structurally unable to reach
/// a result.
const WALLCLOCK_ALLOWLIST: &[&str] = &["crates/zen2-obs/src/clock.rs"];

/// The one file allowed to spawn OS threads: `Session` owns the worker
/// pool, and determinism rests on it being the only spawner.
const THREAD_HOME: &str = "crates/zen2-sim/src/session.rs";

/// Crates whose output is (or feeds) published results; unordered
/// iteration there is a reproducibility hazard even in tests, where it
/// shows up as flakiness.
pub const RESULT_CRATES: &[&str] = &["crates/zen2-sim/", "crates/zen2-experiments/"];

/// Identifiers that mark a `format!("{:?}…")` value as being used for
/// identity rather than display when they appear earlier in the same
/// statement. Structural sinks only — names like `key`/`fingerprint`
/// as plain variables false-positive on Debug in error messages.
const IDENTITY_SINKS: &[&str] =
    &["insert", "entry", "remove", "get", "get_mut", "contains", "contains_key", "hash", "fnv1a"];

/// Runs every single-file rule on `f`.
pub fn lint_file(f: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    no_wallclock(f, &mut out);
    no_thread_escape(f, &mut out);
    no_unordered_iteration(f, &mut out);
    no_debug_keying(f, &mut out);
    crate::semantic::seed_discipline(f, &mut out);
    crate::semantic::float_order(f, &mut out);
    out
}

/// True when `tokens[i..]` matches `pat` as code (idents/punctuation),
/// never inside string or char literal tokens.
pub(crate) fn seq(tokens: &[Token], i: usize, pat: &[&str]) -> bool {
    if i + pat.len() > tokens.len() {
        return false;
    }
    pat.iter()
        .zip(&tokens[i..])
        .all(|(want, t)| matches!(t.kind, TokenKind::Ident | TokenKind::Punct) && t.text == *want)
}

pub(crate) fn is_code_ident(t: &Token, text: &str) -> bool {
    t.kind == TokenKind::Ident && t.text == text
}

/// Index of the first token of the statement containing `tokens[i]`
/// (the token after the nearest preceding `;`, `{`, or `}`).
pub(crate) fn statement_start(tokens: &[Token], i: usize) -> usize {
    let mut k = i;
    while k > 0 {
        let prev = &tokens[k - 1];
        if prev.kind == TokenKind::Punct && matches!(prev.text.as_str(), ";" | "{" | "}") {
            break;
        }
        k -= 1;
    }
    k
}

/// True when `tokens[i]` sits inside a `use …;` item.
fn in_use_statement(tokens: &[Token], i: usize) -> bool {
    let start = statement_start(tokens, i);
    is_code_ident(&tokens[start], "use")
        || (is_code_ident(&tokens[start], "pub")
            && tokens.get(start + 1).is_some_and(|t| is_code_ident(t, "use")))
}

/// no-wallclock: `std::time::Instant` / `SystemTime` are forbidden —
/// simulated time must flow through `zen2-sim::time` (`Ns`), or results
/// become a function of host load. `zen2-sim`'s own `Instant` alias
/// (`time::Instant = Ns`) is virtual time and is not flagged.
fn no_wallclock(f: &SourceFile, out: &mut Vec<Finding>) {
    if WALLCLOCK_ALLOWLIST.iter().any(|p| f.rel.starts_with(p)) {
        return;
    }
    let toks = &f.tokens;
    for (i, t) in toks.iter().enumerate() {
        if is_code_ident(t, "SystemTime") {
            out.push(f.finding(
                NO_WALLCLOCK,
                t.line,
                "SystemTime reads the host clock; sim time must come from zen2-sim::time",
            ));
        }
        if seq(toks, i, &["Instant", "::", "now"]) {
            out.push(f.finding(
                NO_WALLCLOCK,
                t.line,
                "Instant::now() reads the host clock; sim time must come from zen2-sim::time",
            ));
        }
        if seq(toks, i, &["std", "::", "time"]) {
            // Scan the rest of the statement (a `use` list or a path
            // expression) for `Instant` — `SystemTime` is already
            // caught by the bare-ident check above. `std::time::Duration`
            // alone is a span, not a clock read, and stays legal. A `{`
            // that is part of the path (`use std::time::{…}`) is
            // entered; a block-opening `{` ends the statement.
            let mut prev = "";
            for t2 in &toks[i + 3..] {
                if t2.kind == TokenKind::Punct
                    && (t2.text == ";" || (t2.text == "{" && prev != "::"))
                {
                    break;
                }
                if t2.kind == TokenKind::Ident && t2.text == "Instant" {
                    out.push(f.finding(
                        NO_WALLCLOCK,
                        t2.line,
                        "std::time clock type in scope; use zen2-sim::time (Ns) for anything that can reach a result",
                    ));
                    break;
                }
                prev = t2.text.as_str();
            }
        }
    }
}

/// no-thread-escape: `thread::spawn` / `scope` / `Builder` outside
/// `session.rs`. Threads spawned elsewhere bypass `Session`'s ordered
/// delivery and reintroduce schedule-dependent results (the pre-PR 2
/// world).
fn no_thread_escape(f: &SourceFile, out: &mut Vec<Finding>) {
    if f.rel == THREAD_HOME {
        return;
    }
    let toks = &f.tokens;
    for i in 0..toks.len() {
        for tail in ["spawn", "scope", "Builder"] {
            if seq(toks, i, &["thread", "::", tail]) {
                out.push(f.finding(
                    NO_THREAD_ESCAPE,
                    toks[i].line,
                    format!(
                        "thread::{tail} outside {THREAD_HOME}: all parallelism must go through Session so worker count cannot affect results"
                    ),
                ));
            }
        }
    }
}

/// no-unordered-iteration: `HashMap`/`HashSet` anywhere in a
/// result-producing crate. Iteration order is randomized per process,
/// so any traversal that reaches output (or a test assertion) is
/// nondeterministic. The lexer cannot prove a use is membership-only —
/// that's what the inline suppression (with a reason) is for. `use`
/// items are not flagged; the construction site is the hazard.
fn no_unordered_iteration(f: &SourceFile, out: &mut Vec<Finding>) {
    if !RESULT_CRATES.iter().any(|p| f.rel.starts_with(p)) {
        return;
    }
    let toks = &f.tokens;
    for (i, t) in toks.iter().enumerate() {
        if (is_code_ident(t, "HashMap") || is_code_ident(t, "HashSet"))
            && !in_use_statement(toks, i)
        {
            out.push(f.finding(
                NO_UNORDERED_ITERATION,
                t.line,
                format!(
                    "{} in a result-producing crate: iteration order is nondeterministic — use BTreeMap/BTreeSet/Vec, or suppress with a membership-only reason",
                    t.text
                ),
            ));
        }
    }
}

/// no-debug-keying: a `format!("…{:?}…")` value used as a key, hash
/// input, or identity in the same statement. Debug output is not a
/// stable identity (field order, float rendering, and derive output all
/// shift under refactors) — the exact bug behind the PR 2 `Session`
/// keying fix. Structural keys (`Eq`/`Hash` on the type) are the fix.
fn no_debug_keying(f: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &f.tokens;
    for i in 0..toks.len() {
        if !seq(toks, i, &["format", "!", "("]) {
            continue;
        }
        let Some(lit) = toks.get(i + 3) else { continue };
        if lit.kind != TokenKind::Str || !(lit.text.contains(":?}") || lit.text.contains("#?}")) {
            continue;
        }
        let start = statement_start(toks, i);
        let sinky = toks[start..i]
            .iter()
            .any(|t| t.kind == TokenKind::Ident && IDENTITY_SINKS.contains(&t.text.as_str()));
        if sinky {
            out.push(f.finding(
                NO_DEBUG_KEYING,
                toks[i].line,
                "Debug formatting used as a key/identity: {:?} output is not a stable identity — key on the value itself (derive Eq/Hash) instead",
            ));
        }
    }
}

/// snapshot-coverage (cross-file): every concrete accumulator type that
/// appears inside a `GroupedStats<…>` type expression — including the
/// fields of `CheckpointState` bundle structs, which is where they all
/// live — must have an `impl Snapshot` somewhere in the workspace.
/// Without one the experiment compiles but can never be checkpointed,
/// and the gap only surfaces when a long sweep tries to save.
pub fn snapshot_coverage(files: &[SourceFile]) -> Vec<Finding> {
    let mut impls: BTreeSet<String> = BTreeSet::new();
    for f in files {
        collect_snapshot_impls(&f.tokens, &mut impls);
    }
    let mut out = Vec::new();
    let mut seen: BTreeSet<(String, usize, String)> = BTreeSet::new();
    for f in files {
        for (name, line) in grouped_accumulator_types(&f.tokens) {
            if impls.contains(&name) || looks_like_generic_param(&name) {
                continue;
            }
            if seen.insert((f.rel.clone(), line, name.clone())) {
                out.push(f.finding(
                    SNAPSHOT_COVERAGE,
                    line,
                    format!(
                        "`{name}` is used as a GroupedStats accumulator but no `impl Snapshot for {name}` exists in the workspace — it cannot be checkpointed"
                    ),
                ));
            }
        }
    }
    out
}

/// A short all-uppercase identifier is a generic parameter (`A`, `T`),
/// not a concrete accumulator type.
fn looks_like_generic_param(name: &str) -> bool {
    name.len() <= 2 && name.chars().all(|c| c.is_ascii_uppercase())
}

/// Records the target base type of every `impl … Snapshot for X<…>`.
fn collect_snapshot_impls(toks: &[Token], impls: &mut BTreeSet<String>) {
    for i in 0..toks.len() {
        if !is_code_ident(&toks[i], "impl") {
            continue;
        }
        let mut j = i + 1;
        // Skip the generics list, if any.
        if toks.get(j).is_some_and(|t| t.text == "<") {
            let mut depth = 0i32;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "<" => depth += 1,
                    ">" => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        // Trait path: idents and `::` until the `for` keyword; the last
        // segment must be `Snapshot`. (Keywords lex as plain idents, so
        // `for` must be an explicit stop.)
        let mut last = None;
        while let Some(t) = toks.get(j) {
            if is_code_ident(t, "for") || is_code_ident(t, "where") {
                break;
            }
            if t.kind == TokenKind::Ident {
                last = Some(t.text.as_str());
                j += 1;
            } else if t.text == "::" {
                j += 1;
            } else {
                break;
            }
        }
        if last != Some("Snapshot") || !toks.get(j).is_some_and(|t| is_code_ident(t, "for")) {
            continue;
        }
        // Target type: the last ident of its leading path.
        j += 1;
        let mut target = None;
        while let Some(t) = toks.get(j) {
            if is_code_ident(t, "where") {
                break;
            }
            if t.kind == TokenKind::Ident {
                target = Some(t.text.clone());
                j += 1;
            } else if t.text == "::" {
                j += 1;
            } else {
                break;
            }
        }
        if let Some(t) = target {
            impls.insert(t);
        }
    }
}

/// Concrete type idents inside every `GroupedStats<…>` (or turbofish
/// `GroupedStats::<…>`) type expression, with the line they appear on.
/// Path-prefix segments (`stats::Welford` → `stats`) are skipped.
fn grouped_accumulator_types(toks: &[Token]) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !is_code_ident(&toks[i], "GroupedStats") {
            continue;
        }
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.text == "::") {
            j += 1;
        }
        if toks.get(j).is_none_or(|t| t.text != "<") {
            continue;
        }
        let mut depth = 0i32;
        while j < toks.len() {
            let t = &toks[j];
            match t.text.as_str() {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {
                    let next_is_path = toks.get(j + 1).is_some_and(|n| n.text == "::");
                    if t.kind == TokenKind::Ident
                        && !next_is_path
                        && !matches!(t.text.as_str(), "dyn" | "impl")
                    {
                        out.push((t.text.clone(), t.line));
                    }
                }
            }
            j += 1;
        }
    }
    out
}

/// Per-file `unwrap()`/`expect(` counts in `zen2-sim` non-test code,
/// with the line of the first occurrence. This is what the ratchet file
/// pins.
pub fn panic_counts(files: &[SourceFile]) -> BTreeMap<String, (usize, usize)> {
    let mut counts = BTreeMap::new();
    for f in files {
        if !f.rel.starts_with("crates/zen2-sim/src/") || f.is_test_file() {
            continue;
        }
        let mut n = 0;
        let mut first = 0;
        let toks = &f.tokens;
        for i in 0..toks.len() {
            // `self.expect(…)` is a method the type defines (e.g. the
            // snapshot JSON parser's Result-returning token matcher),
            // not Option/Result::expect — `self` is never an Option
            // here, so it cannot be a panic site.
            let own_method = (i >= 2 && seq(toks, i - 2, &["self", "."]))
                || (i >= 1 && is_code_ident(&toks[i - 1], "fn"));
            let hit = (seq(toks, i, &["unwrap", "("]) || seq(toks, i, &["expect", "("]))
                && !own_method
                && !f.is_test_code(toks[i].line);
            if hit {
                n += 1;
                if first == 0 {
                    first = toks[i].line;
                }
            }
        }
        if n > 0 {
            counts.insert(f.rel.clone(), (n, first));
        }
    }
    counts
}

/// panic-ratchet: per-file `unwrap()`/`expect()` ceilings for
/// `zen2-sim` non-test code, pinned exactly by `zen2-lint.ratchet`.
/// Growth fails; shrinkage also fails (run `zen2-lint baseline` to
/// tighten), so the committed file always matches reality and every
/// remaining panic site stays justified. Not inline-suppressible —
/// the ratchet file is the single ledger.
pub fn panic_ratchet(files: &[SourceFile], baseline: &Baseline) -> Vec<Finding> {
    let counts = panic_counts(files);
    let mut out = Vec::new();
    for (rel, (n, first_line)) in &counts {
        match baseline.entries.get(rel) {
            None => out.push(Finding {
                rule: PANIC_RATCHET,
                rel: rel.clone(),
                line: *first_line,
                message: format!(
                    "{n} unwrap()/expect() call(s) but no ratchet entry — handle the error, or add a justified ceiling via `zen2-lint baseline`"
                ),
            }),
            Some(e) if *n > e.count => out.push(Finding {
                rule: PANIC_RATCHET,
                rel: rel.clone(),
                line: *first_line,
                message: format!(
                    "unwrap()/expect() count grew {} -> {n} (ratchet only goes down) — handle the new error instead",
                    e.count
                ),
            }),
            Some(e) if *n < e.count => out.push(Finding {
                rule: PANIC_RATCHET,
                rel: rel.clone(),
                line: *first_line,
                message: format!(
                    "unwrap()/expect() count shrank {} -> {n}: tighten the ceiling with `cargo run -p zen2-lint -- baseline`",
                    e.count
                ),
            }),
            Some(_) => {}
        }
    }
    for (rel, e) in &baseline.entries {
        if !counts.contains_key(rel) {
            out.push(Finding {
                rule: PANIC_RATCHET,
                rel: rel.clone(),
                line: 1,
                message: "stale ratchet entry: the file has no unwrap()/expect() in non-test code (or no longer exists) — remove the entry".to_string(),
            });
        }
        if e.reason.trim().is_empty() || e.reason.trim_start().starts_with("TODO") {
            out.push(Finding {
                rule: PANIC_RATCHET,
                rel: rel.clone(),
                line: 1,
                message: "unexplained ratchet entry: every ceiling needs a `# reason` saying why those panic sites are acceptable".to_string(),
            });
        }
    }
    out
}
