//! The committed dead-pub baseline file (`zen2-lint.deadpub`).
//!
//! One entry per `pub` item the reachability pass ([`crate::graph`])
//! cannot reach from any bin/test/bench/doctest root but that we keep
//! anyway — staged API, analysis false positives:
//!
//! ```text
//! crates/zen2-sim/src/foo.rs::widget = kept  # staged for the PR 8 merge path
//! ```
//!
//! Same ratchet discipline as `zen2-lint.ratchet`: new dead items fail
//! `check` until a human adds a reasoned entry (or deletes the item),
//! stale entries fail until removed, and `TODO` reasons are findings.
//! `render` preserves reasons across `zen2-lint baseline` runs.

use std::collections::BTreeMap;

/// The parsed baseline: `"<rel>::<name>"` → reason.
#[derive(Debug, Default)]
pub struct Baseline {
    pub entries: BTreeMap<String, String>,
}

impl Baseline {
    pub fn empty() -> Self {
        Self::default()
    }
}

/// Parses the baseline file. Blank lines and `#`-leading comment lines
/// are skipped; anything else must be `path::name = kept  # reason`.
pub fn parse(text: &str) -> Result<Baseline, String> {
    let mut entries = BTreeMap::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (body, reason) = match line.split_once('#') {
            Some((b, r)) => (b.trim(), r.trim().to_string()),
            None => (line, String::new()),
        };
        let key = match body.split_once('=') {
            Some((k, v)) if v.trim() == "kept" => k.trim().to_string(),
            _ => {
                return Err(format!(
                    "deadpub line {lineno}: expected `path::name = kept  # reason`"
                ))
            }
        };
        if !key.contains("::") {
            return Err(format!("deadpub line {lineno}: key must be `path::name`"));
        }
        if entries.insert(key.clone(), reason).is_some() {
            return Err(format!("deadpub line {lineno}: duplicate entry for {key}"));
        }
    }
    Ok(Baseline { entries })
}

/// Renders a fresh baseline from the current dead-item keys, carrying
/// over the reason of any entry that already existed in `prior`.
pub fn render(dead_keys: &[String], prior: &Baseline) -> String {
    let mut out = String::from(
        "# zen2-lint dead-pub baseline: pub items unreachable from every bin,\n\
         # test, bench, and doctest root, kept anyway for a stated reason.\n\
         # `zen2-lint check` fails on unlisted dead items and on stale entries;\n\
         # regenerate with `cargo run -p zen2-lint -- baseline` after deliberate\n\
         # changes. Prefer deleting the item or narrowing it to pub(crate).\n",
    );
    let mut keys: Vec<&String> = dead_keys.iter().collect();
    keys.sort();
    keys.dedup();
    for key in keys {
        let reason = prior
            .entries
            .get(key)
            .cloned()
            .filter(|r| !r.trim().is_empty())
            .unwrap_or_else(|| "TODO: justify keeping this unreachable pub item".to_string());
        out.push_str(&format!("{key} = kept  # {reason}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_preserves_reasons() {
        let prior = parse("crates/zen2-sim/src/a.rs::helper = kept  # staged API\n").unwrap();
        assert_eq!(prior.entries["crates/zen2-sim/src/a.rs::helper"], "staged API");
        let keys = vec![
            "crates/zen2-sim/src/a.rs::helper".to_string(),
            "crates/zen2-sim/src/b.rs::other".to_string(),
        ];
        let rendered = render(&keys, &prior);
        let reparsed = parse(&rendered).unwrap();
        assert_eq!(reparsed.entries["crates/zen2-sim/src/a.rs::helper"], "staged API");
        assert!(reparsed.entries["crates/zen2-sim/src/b.rs::other"].starts_with("TODO"));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse("no equals sign").is_err());
        assert!(parse("a.rs::x = removed").is_err(), "only `kept` is a valid value");
        assert!(parse("a.rs = kept").is_err(), "key must have ::name");
        assert!(parse("a.rs::x = kept\na.rs::x = kept").is_err(), "duplicates");
    }
}
