//! The item layer: parses a lexed token stream into an item tree.
//!
//! PR 6's rules saw only tokens; the v2 semantic rules (seed
//! discipline, float-order, snapshot-schema, dead-pub reachability)
//! need to know *where* a token sits — which `fn` with which
//! parameters, which `impl` of which trait for which type, which
//! `mod`, with what visibility. This module recovers exactly that
//! structure and nothing more:
//!
//! - items: `mod`, `fn` (with parameter names), `struct`, `enum` (with
//!   variants), `trait`, `type`, `const`/`static`, `impl` (trait +
//!   self-type names), `use` (with referenced/aliased names),
//!   `macro_rules!`;
//! - attributes (flattened text, so `#[test]` and `#[cfg(test)]` are
//!   recognizable) and `pub`/`pub(…)` visibility;
//! - nesting: `mod`/`trait`/`impl` bodies are parsed recursively; `fn`
//!   bodies are left opaque (expressions — including `match` arms —
//!   are scanned as token ranges by the rules, not re-parsed).
//!
//! The parser is deliberately forgiving: it never panics on input it
//! does not understand, it just skips a token and resynchronizes. A
//! mis-parse can only make an item invisible, and every rule built on
//! this layer fails *toward* silence plus a committed baseline — an
//! invisible item can be caught in triage, a panic would take down the
//! whole gate. Known limits are documented in `docs/LINTS.md`.

use crate::lexer::{Token, TokenKind};

/// How visible an item is outside its module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visibility {
    /// No `pub` at all.
    Private,
    /// `pub(crate)`, `pub(super)`, `pub(in …)` — widened, but never
    /// cross-crate API.
    Restricted,
    /// Bare `pub`.
    Public,
}

/// What kind of item a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    Mod,
    Fn,
    Struct,
    Enum,
    /// One variant of an enum (children of [`ItemKind::Enum`]).
    Variant,
    Trait,
    TypeAlias,
    Const,
    Static,
    Impl,
    Use,
    MacroDef,
    ExternCrate,
}

impl ItemKind {
    /// Human-readable kind name for findings.
    pub fn describe(self) -> &'static str {
        match self {
            ItemKind::Mod => "mod",
            ItemKind::Fn => "fn",
            ItemKind::Struct => "struct",
            ItemKind::Enum => "enum",
            ItemKind::Variant => "variant",
            ItemKind::Trait => "trait",
            ItemKind::TypeAlias => "type alias",
            ItemKind::Const => "const",
            ItemKind::Static => "static",
            ItemKind::Impl => "impl",
            ItemKind::Use => "use",
            ItemKind::MacroDef => "macro",
            ItemKind::ExternCrate => "extern crate",
        }
    }
}

/// One parsed item. Token indices refer to the file's token vector.
#[derive(Debug, Clone)]
pub struct Item {
    pub kind: ItemKind,
    /// The declared name; empty for `impl` and `use` items.
    pub name: String,
    /// Token index of the name token (the definition site), if any.
    pub name_idx: Option<usize>,
    pub vis: Visibility,
    /// 1-based line the item starts on (its first attribute or keyword).
    pub line: usize,
    /// Token range `[start, end)` covering the whole item, attributes
    /// included.
    pub range: (usize, usize),
    /// Flattened attribute texts, e.g. `"test"`, `"cfg(test)"`,
    /// `"derive(Debug,Clone)"`.
    pub attrs: Vec<String>,
    /// `fn` only: parameter names in order (`self` excluded).
    pub params: Vec<String>,
    /// `impl` only: last path segment of the implemented trait, if this
    /// is a trait impl (`impl Trait for Type`).
    pub impl_trait: Option<String>,
    /// `impl` only: last path segment of the self type.
    pub impl_type: Option<String>,
    /// Nested items: `mod`/`trait`/`impl` members, enum variants.
    pub children: Vec<Item>,
    /// `use` only: path segment names the import references.
    pub use_refs: Vec<String>,
}

impl Item {
    /// True when the item's attributes gate it to test builds or mark
    /// it as a test/bench entry point.
    pub fn is_test_marked(&self) -> bool {
        self.attrs
            .iter()
            .any(|a| a == "test" || a == "bench" || (a.starts_with("cfg(") && a.contains("test")))
    }

    /// Depth-first traversal over this item and all descendants.
    pub fn walk<'a>(&'a self, visit: &mut impl FnMut(&'a Item)) {
        visit(self);
        for child in &self.children {
            child.walk(visit);
        }
    }
}

/// Parses the item tree of a whole file's token stream.
pub fn parse_items(toks: &[Token]) -> Vec<Item> {
    Parser { toks }.items(0, toks.len())
}

/// Depth-first traversal over a forest of items.
pub fn walk_items<'a>(items: &'a [Item], visit: &mut impl FnMut(&'a Item)) {
    for item in items {
        item.walk(visit);
    }
}

struct Parser<'a> {
    toks: &'a [Token],
}

impl<'a> Parser<'a> {
    fn text(&self, i: usize) -> &str {
        self.toks.get(i).map_or("", |t| t.text.as_str())
    }

    fn is_ident(&self, i: usize, text: &str) -> bool {
        self.toks.get(i).is_some_and(|t| t.kind == TokenKind::Ident && t.text == text)
    }

    /// Index just past the bracket opened at `open` (or `hi` if
    /// unbalanced — swallow to the end, like the lexer does).
    fn after_matching(&self, open: usize, hi: usize, o: &str, c: &str) -> usize {
        let mut depth = 0usize;
        let mut i = open;
        while i < hi {
            let t = self.text(i);
            if t == o {
                depth += 1;
            } else if t == c {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        hi
    }

    /// Index just past a generics list starting at `i` (`<…>`, `>`
    /// tokens that are part of `->` arrows don't close it); `i` itself
    /// when there is none.
    fn skip_generics(&self, i: usize, hi: usize) -> usize {
        if self.text(i) != "<" {
            return i;
        }
        let mut depth = 0i32;
        let mut k = i;
        while k < hi {
            match self.text(k) {
                "<" => depth += 1,
                ">" if k > 0 && self.text(k - 1) != "-" => {
                    depth -= 1;
                    if depth == 0 {
                        return k + 1;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        hi
    }

    /// Parses items in `[lo, hi)`.
    fn items(&self, lo: usize, hi: usize) -> Vec<Item> {
        let mut out = Vec::new();
        let mut i = lo;
        while i < hi {
            match self.item(i, hi) {
                Some((item, next)) => {
                    debug_assert!(next > i);
                    out.push(item);
                    i = next;
                }
                None => i += 1,
            }
        }
        out
    }

    /// Tries to parse one item starting at `i`; returns it plus the
    /// index just past it.
    fn item(&self, start: usize, hi: usize) -> Option<(Item, usize)> {
        let mut i = start;
        // Attributes. Inner attributes (`#![…]`) are file/module
        // metadata, not item heads — skip them without starting an item.
        let mut attrs = Vec::new();
        while self.text(i) == "#" && i + 1 < hi {
            if self.text(i + 1) == "!" {
                return None;
            }
            if self.text(i + 1) != "[" {
                return None;
            }
            let close = self.after_matching(i + 1, hi, "[", "]");
            let body = (i + 2).min(close.saturating_sub(1));
            let flat: String =
                self.toks[body..close.saturating_sub(1)].iter().map(|t| t.text.as_str()).collect();
            attrs.push(flat);
            i = close;
        }
        // Visibility.
        let mut vis = Visibility::Private;
        if self.is_ident(i, "pub") {
            vis = Visibility::Public;
            i += 1;
            if self.text(i) == "(" {
                vis = Visibility::Restricted;
                i = self.after_matching(i, hi, "(", ")");
            }
        }
        // Qualifiers that may precede the defining keyword.
        loop {
            if self.is_ident(i, "unsafe")
                || self.is_ident(i, "async")
                || self.is_ident(i, "default")
            {
                i += 1;
            } else if self.is_ident(i, "extern")
                && self.toks.get(i + 1).is_some_and(|t| t.kind == TokenKind::Str)
                && self.toks.get(i + 2).is_some_and(|t| t.text == "fn")
            {
                // `extern "C" fn …`
                i += 2;
            } else {
                break;
            }
        }

        let kw = self.toks.get(i)?;
        if kw.kind != TokenKind::Ident {
            return None;
        }
        let line = self.toks[start].line;
        let mut item = Item {
            kind: ItemKind::Fn,
            name: String::new(),
            name_idx: None,
            vis,
            line,
            range: (start, i + 1),
            attrs,
            params: Vec::new(),
            impl_trait: None,
            impl_type: None,
            children: Vec::new(),
            use_refs: Vec::new(),
        };
        let end = match kw.text.as_str() {
            "mod" => self.finish_mod(&mut item, i + 1, hi)?,
            "fn" => self.finish_fn(&mut item, i + 1, hi)?,
            "struct" => self.finish_struct(&mut item, i + 1, hi)?,
            "enum" => self.finish_enum(&mut item, i + 1, hi)?,
            "trait" => self.finish_trait(&mut item, i + 1, hi)?,
            "type" => self.finish_named_to_semi(&mut item, ItemKind::TypeAlias, i + 1, hi)?,
            "const" | "static" => {
                // `const fn` belongs to the fn arm; `const _` pins are
                // named `_`.
                if self.text(i + 1) == "fn" {
                    self.finish_fn(&mut item, i + 2, hi)?
                } else {
                    let kind = if kw.text == "const" { ItemKind::Const } else { ItemKind::Static };
                    let at = if self.is_ident(i + 1, "mut") { i + 2 } else { i + 1 };
                    self.finish_named_to_semi(&mut item, kind, at, hi)?
                }
            }
            "impl" => self.finish_impl(&mut item, i + 1, hi)?,
            "use" => {
                item.kind = ItemKind::Use;
                let end = self.to_semi(i + 1, hi);
                item.use_refs = use_refs(&self.toks[i + 1..end]);
                end
            }
            "macro_rules" => {
                if self.text(i + 1) != "!" {
                    return None;
                }
                item.kind = ItemKind::MacroDef;
                let name_tok = self.toks.get(i + 2)?;
                item.name = name_tok.text.clone();
                item.name_idx = Some(i + 2);
                let mut k = i + 3;
                while k < hi && !matches!(self.text(k), "{" | "(" | "[") {
                    k += 1;
                }
                match self.text(k) {
                    "{" => self.after_matching(k, hi, "{", "}"),
                    "(" => self.to_semi(self.after_matching(k, hi, "(", ")"), hi),
                    "[" => self.to_semi(self.after_matching(k, hi, "[", "]"), hi),
                    _ => hi,
                }
            }
            "extern" => {
                if self.is_ident(i + 1, "crate") {
                    item.kind = ItemKind::ExternCrate;
                    let name_tok = self.toks.get(i + 2)?;
                    item.name = name_tok.text.clone();
                    item.name_idx = Some(i + 2);
                    self.to_semi(i + 2, hi)
                } else {
                    // `extern "C" { … }` foreign block: skip opaquely.
                    let mut k = i + 1;
                    while k < hi && self.text(k) != "{" {
                        k += 1;
                    }
                    item.kind = ItemKind::Mod;
                    item.name = "extern".to_string();
                    self.after_matching(k, hi, "{", "}")
                }
            }
            _ => return None,
        };
        item.range = (start, end.max(i + 1));
        Some((item, end.max(i + 1)))
    }

    /// Index just past the next `;` at bracket depth zero.
    fn to_semi(&self, from: usize, hi: usize) -> usize {
        let mut depth = 0i32;
        let mut i = from;
        while i < hi {
            match self.text(i) {
                "{" | "(" | "[" => depth += 1,
                "}" | ")" | "]" => depth -= 1,
                ";" if depth <= 0 => return i + 1,
                _ => {}
            }
            i += 1;
        }
        hi
    }

    fn take_name(&self, item: &mut Item, at: usize) -> Option<usize> {
        let tok = self.toks.get(at)?;
        if tok.kind != TokenKind::Ident && tok.text != "_" {
            return None;
        }
        item.name = tok.text.clone();
        item.name_idx = Some(at);
        Some(at + 1)
    }

    fn finish_mod(&self, item: &mut Item, at: usize, hi: usize) -> Option<usize> {
        item.kind = ItemKind::Mod;
        let mut i = self.take_name(item, at)?;
        match self.text(i) {
            ";" => Some(i + 1),
            "{" => {
                let end = self.after_matching(i, hi, "{", "}");
                item.children = self.items(i + 1, end.saturating_sub(1));
                Some(end)
            }
            _ => {
                // `mod name` followed by something unexpected; treat as
                // body-less so the parser resynchronizes.
                i += 1;
                Some(i)
            }
        }
    }

    fn finish_fn(&self, item: &mut Item, at: usize, hi: usize) -> Option<usize> {
        item.kind = ItemKind::Fn;
        let mut i = self.take_name(item, at)?;
        i = self.skip_generics(i, hi);
        if self.text(i) == "(" {
            let close = self.after_matching(i, hi, "(", ")");
            item.params = param_names(&self.toks[i + 1..close.saturating_sub(1)]);
            i = close;
        }
        // Return type / where clause, then a `{ body }` or a bare `;`
        // (trait method signature).
        while i < hi {
            match self.text(i) {
                ";" => return Some(i + 1),
                "{" => return Some(self.after_matching(i, hi, "{", "}")),
                "<" => i = self.skip_generics(i, hi),
                _ => i += 1,
            }
        }
        Some(hi)
    }

    fn finish_struct(&self, item: &mut Item, at: usize, hi: usize) -> Option<usize> {
        item.kind = ItemKind::Struct;
        let mut i = self.take_name(item, at)?;
        i = self.skip_generics(i, hi);
        loop {
            match self.text(i) {
                ";" => return Some(i + 1),
                "(" => {
                    // Tuple struct: fields, maybe a where clause, `;`.
                    i = self.after_matching(i, hi, "(", ")");
                }
                "{" => return Some(self.after_matching(i, hi, "{", "}")),
                "<" => i = self.skip_generics(i, hi),
                _ if i < hi => i += 1,
                _ => return Some(hi),
            }
        }
    }

    fn finish_enum(&self, item: &mut Item, at: usize, hi: usize) -> Option<usize> {
        item.kind = ItemKind::Enum;
        let mut i = self.take_name(item, at)?;
        i = self.skip_generics(i, hi);
        while i < hi && self.text(i) != "{" {
            i += 1;
        }
        let end = self.after_matching(i, hi, "{", "}");
        // Variants: idents at brace depth 1, at the start or right
        // after a top-level comma, attributes skipped.
        let mut k = i + 1;
        let body_end = end.saturating_sub(1);
        let mut expecting = true;
        let mut depth = 0i32;
        while k < body_end {
            match self.text(k) {
                "{" | "(" | "[" => depth += 1,
                "}" | ")" | "]" => depth -= 1,
                "," if depth == 0 => expecting = true,
                "#" if depth == 0 && self.text(k + 1) == "[" => {
                    k = self.after_matching(k + 1, body_end, "[", "]");
                    continue;
                }
                _ => {
                    if expecting && depth == 0 && self.toks[k].kind == TokenKind::Ident {
                        item.children.push(Item {
                            kind: ItemKind::Variant,
                            name: self.toks[k].text.clone(),
                            name_idx: Some(k),
                            vis: item.vis,
                            line: self.toks[k].line,
                            range: (k, k + 1),
                            attrs: Vec::new(),
                            params: Vec::new(),
                            impl_trait: None,
                            impl_type: None,
                            children: Vec::new(),
                            use_refs: Vec::new(),
                        });
                        expecting = false;
                    }
                }
            }
            k += 1;
        }
        Some(end)
    }

    fn finish_trait(&self, item: &mut Item, at: usize, hi: usize) -> Option<usize> {
        item.kind = ItemKind::Trait;
        let mut i = self.take_name(item, at)?;
        while i < hi && self.text(i) != "{" && self.text(i) != ";" {
            if self.text(i) == "<" {
                i = self.skip_generics(i, hi);
            } else {
                i += 1;
            }
        }
        if self.text(i) == ";" {
            return Some(i + 1);
        }
        let end = self.after_matching(i, hi, "{", "}");
        item.children = self.items(i + 1, end.saturating_sub(1));
        Some(end)
    }

    fn finish_impl(&self, item: &mut Item, at: usize, hi: usize) -> Option<usize> {
        item.kind = ItemKind::Impl;
        let mut i = self.skip_generics(at, hi);
        // First path (trait in `impl Trait for Type`, else the type).
        let (first, after_first) = self.path_last_segment(i, hi);
        i = after_first;
        if self.is_ident(i, "for") {
            let (second, after_second) = self.path_last_segment(i + 1, hi);
            item.impl_trait = first;
            item.impl_type = second;
            i = after_second;
        } else {
            item.impl_type = first;
        }
        while i < hi && self.text(i) != "{" {
            if self.text(i) == "<" {
                i = self.skip_generics(i, hi);
            } else {
                i += 1;
            }
        }
        let end = self.after_matching(i, hi, "{", "}");
        item.children = self.items(i + 1, end.saturating_sub(1));
        Some(end)
    }

    /// Reads a type path (`a::b::C<…>`, `!`, `&mut T`, `[T; N]`,
    /// `(T, U)`) and returns its last ident segment plus the index just
    /// past the path.
    fn path_last_segment(&self, from: usize, hi: usize) -> (Option<String>, usize) {
        let mut last = None;
        let mut i = from;
        while i < hi {
            let t = &self.toks[i];
            match t.text.as_str() {
                "::" | "&" | "*" | "!" => i += 1,
                "<" => i = self.skip_generics(i, hi),
                "(" => i = self.after_matching(i, hi, "(", ")"),
                "[" => i = self.after_matching(i, hi, "[", "]"),
                "for" | "where" | "{" => break,
                _ if t.kind == TokenKind::Ident => {
                    if t.text == "dyn" || t.text == "mut" {
                        i += 1;
                        continue;
                    }
                    last = Some(t.text.clone());
                    i += 1;
                    // A path continues only through `::` or generics.
                    if !matches!(self.text(i), "::" | "<") {
                        break;
                    }
                }
                _ if t.kind == TokenKind::Lifetime => i += 1,
                _ => break,
            }
        }
        (last, i)
    }

    fn finish_named_to_semi(
        &self,
        item: &mut Item,
        kind: ItemKind,
        at: usize,
        hi: usize,
    ) -> Option<usize> {
        item.kind = kind;
        let i = self.take_name(item, at)?;
        Some(self.to_semi(i, hi))
    }
}

/// Parameter names from the token slice between a `fn`'s parentheses:
/// for each top-level comma-separated segment, the identifiers before
/// the first top-level `:` (handles `x: T`, `mut x: T`, and simple
/// patterns like `(a, b): (T, U)`); `self` receivers are skipped.
fn param_names(toks: &[Token]) -> Vec<String> {
    let mut names = Vec::new();
    let mut depth = 0i32;
    let mut in_pattern = true;
    for (k, t) in toks.iter().enumerate() {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "<" => depth += 1,
            ">" if k > 0 && toks[k - 1].text != "-" => depth -= 1,
            "," if depth == 0 => in_pattern = true,
            ":" if depth == 0 => in_pattern = false,
            _ => {
                if in_pattern
                    && t.kind == TokenKind::Ident
                    && !matches!(t.text.as_str(), "self" | "mut" | "ref")
                {
                    names.push(t.text.clone());
                }
            }
        }
    }
    names
}

/// Names a `use` item references: every path segment except the glue
/// keywords. `as` aliases count as references to the original name; the
/// alias itself is a local definition, not a reference.
fn use_refs(toks: &[Token]) -> Vec<String> {
    let mut refs = Vec::new();
    let mut skip_next = false;
    for t in toks {
        if t.kind != TokenKind::Ident {
            continue;
        }
        if skip_next {
            skip_next = false;
            continue;
        }
        match t.text.as_str() {
            "as" => skip_next = true,
            "self" | "super" | "crate" => {}
            _ => refs.push(t.text.clone()),
        }
    }
    refs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Vec<Item> {
        parse_items(&lex(src).tokens)
    }

    fn find<'a>(items: &'a [Item], name: &str) -> &'a Item {
        let mut found = None;
        walk_items(items, &mut |item| {
            if item.name == name && found.is_none() {
                found = Some(item);
            }
        });
        found.unwrap_or_else(|| panic!("no item named {name}"))
    }

    #[test]
    fn parses_fns_with_params_and_visibility() {
        let items = parse(
            "pub fn run(seed: u64, mut cfg: Config) -> Result<u64, E> { seed + 1 }\n\
             fn helper(&self, (a, b): (u64, u64)) {}\n\
             pub(crate) fn scoped() {}\n",
        );
        assert_eq!(items.len(), 3);
        let run = find(&items, "run");
        assert_eq!(run.kind, ItemKind::Fn);
        assert_eq!(run.vis, Visibility::Public);
        assert_eq!(run.params, ["seed", "cfg"]);
        let helper = find(&items, "helper");
        assert_eq!(helper.vis, Visibility::Private);
        assert_eq!(helper.params, ["a", "b"]);
        assert_eq!(find(&items, "scoped").vis, Visibility::Restricted);
    }

    #[test]
    fn parses_impl_headers() {
        let items = parse(
            "impl<A: Snapshot> Snapshot for GroupedStats<A> { fn snapshot(&self) {} }\n\
             impl Checkpoint { pub fn save(&self) {} }\n\
             impl crate::stats::Snapshot for Option<S> {}\n",
        );
        assert_eq!(items[0].impl_trait.as_deref(), Some("Snapshot"));
        assert_eq!(items[0].impl_type.as_deref(), Some("GroupedStats"));
        assert_eq!(items[0].children.len(), 1);
        assert_eq!(items[1].impl_trait, None);
        assert_eq!(items[1].impl_type.as_deref(), Some("Checkpoint"));
        assert_eq!(items[1].children[0].vis, Visibility::Public);
        assert_eq!(items[2].impl_trait.as_deref(), Some("Snapshot"));
        assert_eq!(items[2].impl_type.as_deref(), Some("Option"));
    }

    #[test]
    fn parses_mods_enums_and_variants() {
        let items = parse(
            "pub mod outer {\n\
                 pub enum Measurement { Watts(f64), Events { n: u64 }, None }\n\
                 mod inner;\n\
             }\n",
        );
        let outer = find(&items, "outer");
        assert_eq!(outer.kind, ItemKind::Mod);
        let measurement = find(&items, "Measurement");
        let variants: Vec<&str> = measurement.children.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(variants, ["Watts", "Events", "None"]);
        assert_eq!(find(&items, "inner").kind, ItemKind::Mod);
    }

    #[test]
    fn attributes_mark_test_items() {
        let items = parse(
            "#[test]\nfn t() {}\n\
             #[cfg(test)]\nmod tests { fn helper() {} }\n\
             #[derive(Debug, Clone)]\npub struct S;\n",
        );
        assert!(find(&items, "t").is_test_marked());
        assert!(find(&items, "tests").is_test_marked());
        assert!(!find(&items, "S").is_test_marked());
        assert_eq!(find(&items, "S").attrs, ["derive(Debug,Clone)"]);
    }

    #[test]
    fn use_items_record_referenced_segments() {
        let items =
            parse("use zen2_sim::{stats::Welford, Session as S};\npub use crate::probe::Probe;\n");
        assert_eq!(items[0].kind, ItemKind::Use);
        assert_eq!(items[0].use_refs, ["zen2_sim", "stats", "Welford", "Session"]);
        assert_eq!(items[1].use_refs, ["probe", "Probe"]);
    }

    #[test]
    fn consts_statics_types_and_macros() {
        let items = parse(
            "pub const MAGIC: &str = \"zen2\";\n\
             static mut COUNTER: u64 = 0;\n\
             pub type Ns = u128;\n\
             macro_rules! push { ($x:expr) => {}; }\n",
        );
        assert_eq!(find(&items, "MAGIC").kind, ItemKind::Const);
        assert_eq!(find(&items, "COUNTER").kind, ItemKind::Static);
        assert_eq!(find(&items, "Ns").kind, ItemKind::TypeAlias);
        assert_eq!(find(&items, "push").kind, ItemKind::MacroDef);
    }

    #[test]
    fn fn_bodies_are_opaque_and_do_not_leak_items() {
        // Nested bindings/closures inside a body must not split the fn.
        let items = parse(
            "fn outer() -> u64 {\n\
                 let f = |x: u64| x + 1;\n\
                 struct_like_call(1);\n\
                 match x { A::B => 1, _ => 2 }\n\
             }\n\
             fn after() {}\n",
        );
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].name, "outer");
        assert_eq!(items[1].name, "after");
    }

    #[test]
    fn trait_items_and_signatures() {
        let items = parse(
            "pub trait Snapshot: Sized {\n\
                 fn snapshot(&self) -> Json;\n\
                 fn to_json_text(&self) -> String { self.snapshot().render() }\n\
             }\n",
        );
        let tr = find(&items, "Snapshot");
        assert_eq!(tr.kind, ItemKind::Trait);
        let names: Vec<&str> = tr.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["snapshot", "to_json_text"]);
    }

    #[test]
    fn malformed_input_never_panics() {
        for src in ["impl", "fn", "pub", "mod {", "enum E {", "use ;", "# [", "fn f(unclosed {"] {
            let _ = parse(src);
        }
    }

    #[test]
    fn generics_with_fn_bounds_do_not_derail() {
        let items = parse(
            "pub fn stream<F: FnMut(usize) -> u64, G>(sink: F, g: G) where G: Fn() -> bool { }\n\
             fn next() {}\n",
        );
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].params, ["sink", "g"]);
    }
}
