//! CLI: `zen2-lint check` gates CI; `zen2-lint baseline` regenerates
//! the panic-ratchet and dead-pub baselines after deliberate changes;
//! `zen2-lint schema` maintains the snapshot wire-format lock.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use zen2_lint::{deadpub, graph, ratchet, rules, schema, workspace};

const USAGE: &str = "usage: zen2-lint <check|baseline|schema> [--root <workspace-dir>]

  check [--format json]
            run all rules over the workspace; exit 1 on any finding.
            --format json prints findings as a JSON array instead of text
  baseline  rewrite zen2-lint.ratchet (unwrap()/expect() counts) and
            zen2-lint.deadpub (unreachable pub items), preserving reasons
  schema [--check]
            rewrite SNAPSHOT_SCHEMA.lock from the tree's Snapshot impls;
            refuses if the schema changed without a checkpoint version
            bump. --check verifies the committed lock is current instead";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut root_arg = None;
    let mut json = false;
    let mut check_only = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "check" | "baseline" | "schema" if cmd.is_none() => cmd = Some(a.clone()),
            "--root" => match it.next() {
                Some(p) => root_arg = Some(PathBuf::from(p)),
                None => return usage_error("--root needs a path"),
            },
            "--format" => match (cmd.as_deref(), it.next().map(String::as_str)) {
                (Some("check"), Some("json")) => json = true,
                (Some("check"), Some("text")) => json = false,
                (Some("check"), _) => return usage_error("--format takes `json` or `text`"),
                _ => return usage_error("--format only applies to `check`"),
            },
            "--check" if cmd.as_deref() == Some("schema") => check_only = true,
            other => return usage_error(&format!("unrecognized argument `{other}`")),
        }
    }
    let Some(cmd) = cmd else { return usage_error("missing subcommand") };

    let root = match root_arg.or_else(|| {
        let cwd = std::env::current_dir().ok()?;
        workspace::find_root(&cwd)
    }) {
        Some(r) => r,
        None => {
            eprintln!("zen2-lint: no workspace root found (no ancestor Cargo.toml with [workspace]); pass --root");
            return ExitCode::from(2);
        }
    };

    let result = match cmd.as_str() {
        "check" => check(&root, json),
        "schema" => schema_cmd(&root, check_only),
        _ => baseline(&root),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("zen2-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage_error(why: &str) -> ExitCode {
    eprintln!("zen2-lint: {why}\n{USAGE}");
    ExitCode::from(2)
}

fn check(root: &Path, json: bool) -> Result<ExitCode, String> {
    let report = zen2_lint::run_check(root)?;
    if json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render());
    }
    Ok(if report.is_clean() { ExitCode::SUCCESS } else { ExitCode::FAILURE })
}

fn baseline(root: &Path) -> Result<ExitCode, String> {
    let files = zen2_lint::load_tree(root)?;

    let counts = rules::panic_counts(&files);
    let ratchet_path = root.join(workspace::RATCHET_FILE);
    let prior = match fs::read_to_string(&ratchet_path) {
        Ok(text) => ratchet::parse(&text)?,
        Err(_) => ratchet::Baseline::empty(),
    };
    let rendered = ratchet::render(&counts, &prior);
    fs::write(&ratchet_path, &rendered)
        .map_err(|e| format!("writing {}: {e}", ratchet_path.display()))?;
    let todos = rendered.lines().filter(|l| l.contains("# TODO")).count();
    println!(
        "zen2-lint: wrote {} ({} entries, {todos} needing a reason)",
        ratchet_path.display(),
        counts.len()
    );

    let dead: Vec<String> = graph::dead_pub_items(&files).into_iter().map(|d| d.key).collect();
    let deadpub_path = root.join(workspace::DEADPUB_FILE);
    let prior_dead = match fs::read_to_string(&deadpub_path) {
        Ok(text) => deadpub::parse(&text)?,
        Err(_) => deadpub::Baseline::empty(),
    };
    let rendered = deadpub::render(&dead, &prior_dead);
    fs::write(&deadpub_path, &rendered)
        .map_err(|e| format!("writing {}: {e}", deadpub_path.display()))?;
    let todos = rendered.lines().filter(|l| l.contains("# TODO")).count();
    println!(
        "zen2-lint: wrote {} ({} entries, {todos} needing a reason)",
        deadpub_path.display(),
        dead.len()
    );
    Ok(ExitCode::SUCCESS)
}

fn schema_cmd(root: &Path, check_only: bool) -> Result<ExitCode, String> {
    let files = zen2_lint::load_tree(root)?;
    let ex = schema::extract(&files);
    if ex.format.is_none() {
        return Err(
            "cannot locate the checkpoint format version (`const MAGIC: &str = …`)".to_string()
        );
    }
    let path = root.join(workspace::SCHEMA_LOCK_FILE);
    let prior = match fs::read_to_string(&path) {
        Ok(text) => Some(schema::parse_lock(&text)?),
        Err(_) => None,
    };
    let rendered = schema::render_lock(&ex, prior.as_ref());

    if check_only {
        return match fs::read_to_string(&path) {
            Ok(current) if current == rendered => {
                println!("zen2-lint: {} is current ({} entries)", path.display(), ex.entries.len());
                Ok(ExitCode::SUCCESS)
            }
            Ok(_) => {
                eprintln!(
                    "zen2-lint: {} is out of date — regenerate with `cargo run -p zen2-lint -- schema`",
                    path.display()
                );
                Ok(ExitCode::FAILURE)
            }
            Err(e) => Err(format!("reading {}: {e}", path.display())),
        };
    }

    if let Some(p) = &prior {
        let blockers = schema::regeneration_blockers(&ex, p);
        if !blockers.is_empty() {
            eprintln!(
                "zen2-lint: refusing to regenerate {}: the wire schema changed under the same \
                 checkpoint format version ({}) — bump MAGIC in crates/zen2-sim/src/checkpoint.rs \
                 first, then rerun",
                path.display(),
                blockers.join(", ")
            );
            return Ok(ExitCode::FAILURE);
        }
    }
    fs::write(&path, &rendered).map_err(|e| format!("writing {}: {e}", path.display()))?;
    println!("zen2-lint: wrote {} ({} entries)", path.display(), ex.entries.len());
    Ok(ExitCode::SUCCESS)
}
