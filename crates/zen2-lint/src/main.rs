//! CLI: `zen2-lint check` gates CI; `zen2-lint baseline` regenerates
//! the panic-ratchet file after deliberate changes.

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use zen2_lint::{ratchet, rules, workspace};

const USAGE: &str = "usage: zen2-lint <check|baseline> [--root <workspace-dir>]

  check     run all rules over the workspace; exit 1 on any finding
  baseline  rewrite zen2-lint.ratchet from current unwrap()/expect()
            counts, preserving existing reasons";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut root_arg = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "check" | "baseline" if cmd.is_none() => cmd = Some(a.clone()),
            "--root" => match it.next() {
                Some(p) => root_arg = Some(PathBuf::from(p)),
                None => return usage_error("--root needs a path"),
            },
            other => return usage_error(&format!("unrecognized argument `{other}`")),
        }
    }
    let Some(cmd) = cmd else { return usage_error("missing subcommand") };

    let root = match root_arg.or_else(|| {
        let cwd = std::env::current_dir().ok()?;
        workspace::find_root(&cwd)
    }) {
        Some(r) => r,
        None => {
            eprintln!("zen2-lint: no workspace root found (no ancestor Cargo.toml with [workspace]); pass --root");
            return ExitCode::from(2);
        }
    };

    let result = match cmd.as_str() {
        "check" => check(&root),
        _ => baseline(&root),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("zen2-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage_error(why: &str) -> ExitCode {
    eprintln!("zen2-lint: {why}\n{USAGE}");
    ExitCode::from(2)
}

fn check(root: &std::path::Path) -> Result<ExitCode, String> {
    let report = zen2_lint::run_check(root)?;
    print!("{}", report.render());
    Ok(if report.is_clean() { ExitCode::SUCCESS } else { ExitCode::FAILURE })
}

fn baseline(root: &std::path::Path) -> Result<ExitCode, String> {
    let files = zen2_lint::load_tree(root)?;
    let counts = rules::panic_counts(&files);
    let path = root.join(workspace::RATCHET_FILE);
    let prior = match fs::read_to_string(&path) {
        Ok(text) => ratchet::parse(&text)?,
        Err(_) => ratchet::Baseline::empty(),
    };
    let rendered = ratchet::render(&counts, &prior);
    fs::write(&path, &rendered).map_err(|e| format!("writing {}: {e}", path.display()))?;
    let todos = rendered.lines().filter(|l| l.contains("# TODO")).count();
    println!(
        "zen2-lint: wrote {} ({} entries, {todos} needing a reason)",
        path.display(),
        counts.len()
    );
    Ok(ExitCode::SUCCESS)
}
