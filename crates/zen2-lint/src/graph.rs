//! dead-pub: cross-crate reachability of `pub` items.
//!
//! A `pub` item rustc never warns about can still be dead: `pub`
//! silences the `dead_code` lint crate-wide, so unexercised public API
//! accumulates silently — and unexercised API is exactly where contract
//! rot starts (nothing tests it, nothing would notice it breaking).
//! This pass walks a name-based item graph: roots are every identifier
//! in bin/test/bench/example files, test regions and `use` items of
//! library files, and fenced doctest code; liveness then propagates
//! through item bodies (a live item's references become live; an impl
//! block activates when its self type does). Top-level `pub` items
//! whose name never becomes live are findings, ratcheted in the
//! reason-annotated `zen2-lint.deadpub` baseline.
//!
//! Name-based means conservative: two items sharing a name keep each
//! other alive, a struct field named like a dead fn keeps it alive, and
//! macro-generated items are invisible. False *positives* are what the
//! baseline file is for; false negatives just mean the ratchet tightens
//! later.

use std::collections::{BTreeMap, BTreeSet};

use crate::deadpub::Baseline;
use crate::items::{Item, ItemKind, Visibility};
use crate::lexer::{lex, TokenKind};
use crate::rules::DEAD_PUB;
use crate::workspace::DEADPUB_FILE;
use crate::{Finding, SourceFile};

/// One unreachable `pub` item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadItem {
    /// `"<rel>::<name>"` — the baseline key.
    pub key: String,
    pub rel: String,
    pub name: String,
    pub line: usize,
    pub kind: ItemKind,
}

/// True for files that are reachability *roots* rather than library
/// code: binaries, tests, benches, examples, and build scripts. Every
/// identifier in them counts as a live reference.
fn is_root_file(f: &SourceFile) -> bool {
    f.is_test_file()
        || f.rel.contains("/src/bin/")
        || f.rel.ends_with("/main.rs")
        || f.rel.contains("/examples/")
        || f.rel.starts_with("examples/")
        || f.rel.ends_with("/build.rs")
}

/// One node in the liveness worklist.
struct DefNode {
    name: String,
    is_impl: bool,
    impl_type: Option<String>,
    refs: Vec<String>,
    processed: bool,
}

/// All unreachable top-level `pub` items of the tree, sorted by key.
pub fn dead_pub_items(files: &[SourceFile]) -> Vec<DeadItem> {
    let mut live: BTreeSet<String> = BTreeSet::new();
    let mut defs: Vec<DefNode> = Vec::new();
    let mut findable: Vec<DeadItem> = Vec::new();

    for f in files {
        if is_root_file(f) {
            for t in &f.tokens {
                if t.kind == TokenKind::Ident {
                    live.insert(t.text.clone());
                }
            }
            continue;
        }
        // Library file: test regions are roots (tests exercise API),
        // doctest fences are roots, `use` lists are roots, and every
        // non-test item becomes a graph node.
        for t in &f.tokens {
            if t.kind == TokenKind::Ident && f.is_test_code(t.line) {
                live.insert(t.text.clone());
            }
        }
        doctest_refs(f, &mut live);
        collect_defs(f, &f.items, &mut live, &mut defs, &mut findable);
    }

    let def_names: BTreeSet<String> =
        defs.iter().filter(|d| !d.is_impl).map(|d| d.name.clone()).collect();

    // Fixpoint: activating a node makes its references live, which may
    // activate more nodes.
    loop {
        let mut changed = false;
        for d in &mut defs {
            if d.processed {
                continue;
            }
            let active = if d.is_impl {
                match &d.impl_type {
                    // An impl of a workspace type runs iff the type is
                    // used; an impl of a foreign type always counts.
                    Some(t) => live.contains(t) || !def_names.contains(t),
                    None => true,
                }
            } else {
                live.contains(&d.name)
            };
            if active {
                d.processed = true;
                for r in &d.refs {
                    if live.insert(r.clone()) {
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    let mut dead: Vec<DeadItem> =
        findable.into_iter().filter(|it| !live.contains(&it.name)).collect();
    dead.sort_by(|a, b| a.key.cmp(&b.key));
    dead.dedup_by(|a, b| a.key == b.key);
    dead
}

/// Recursively collects graph nodes from a library file's item forest.
/// Recursion descends only through `mod` bodies: impls and traits are
/// single nodes (method-level liveness would be wrong under trait
/// dispatch), fn bodies are opaque.
fn collect_defs(
    f: &SourceFile,
    items: &[Item],
    live: &mut BTreeSet<String>,
    defs: &mut Vec<DefNode>,
    findable: &mut Vec<DeadItem>,
) {
    for item in items {
        if f.is_test_code(item.line) {
            continue; // Already rooted via the test-region scan.
        }
        if item.is_test_marked() {
            // `#[test]`/`#[cfg(test)]` outside a detected region: its
            // contents are roots, the item itself is not API.
            add_range_refs(f, item.range, live);
            continue;
        }
        match item.kind {
            ItemKind::Use => {
                // rustc's unused_imports keeps `use` honest, so every
                // committed import is a real reference.
                for r in &item.use_refs {
                    live.insert(r.clone());
                }
            }
            ItemKind::Mod => {
                if item.vis == Visibility::Public {
                    findable.push(dead_item(f, item));
                }
                collect_defs(f, &item.children, live, defs, findable);
            }
            ItemKind::Impl => {
                defs.push(DefNode {
                    name: String::new(),
                    is_impl: true,
                    impl_type: item.impl_type.clone(),
                    refs: range_refs(f, item.range, &excluded_name_idxs(item)),
                    processed: false,
                });
            }
            ItemKind::Fn
            | ItemKind::Struct
            | ItemKind::Enum
            | ItemKind::Trait
            | ItemKind::TypeAlias
            | ItemKind::Const
            | ItemKind::Static
            | ItemKind::MacroDef => {
                if item.vis == Visibility::Public {
                    findable.push(dead_item(f, item));
                }
                defs.push(DefNode {
                    name: item.name.clone(),
                    is_impl: false,
                    impl_type: None,
                    refs: range_refs(f, item.range, &excluded_name_idxs(item)),
                    processed: false,
                });
            }
            ItemKind::Variant | ItemKind::ExternCrate => {}
        }
    }
}

fn dead_item(f: &SourceFile, item: &Item) -> DeadItem {
    DeadItem {
        key: format!("{}::{}", f.rel, item.name),
        rel: f.rel.clone(),
        name: item.name.clone(),
        line: item.line,
        kind: item.kind,
    }
}

/// Token indices that are definition sites, not references: the item's
/// own name and its variants' names.
fn excluded_name_idxs(item: &Item) -> BTreeSet<usize> {
    let mut out = BTreeSet::new();
    out.extend(item.name_idx);
    for c in &item.children {
        if c.kind == ItemKind::Variant {
            out.extend(c.name_idx);
        }
    }
    out
}

/// Identifier references inside a token range, minus definition sites.
fn range_refs(f: &SourceFile, range: (usize, usize), excluded: &BTreeSet<usize>) -> Vec<String> {
    let mut refs = Vec::new();
    for i in range.0..range.1.min(f.tokens.len()) {
        let t = &f.tokens[i];
        if t.kind == TokenKind::Ident && !excluded.contains(&i) {
            refs.push(t.text.clone());
        }
    }
    refs
}

fn add_range_refs(f: &SourceFile, range: (usize, usize), live: &mut BTreeSet<String>) {
    for i in range.0..range.1.min(f.tokens.len()) {
        let t = &f.tokens[i];
        if t.kind == TokenKind::Ident {
            live.insert(t.text.clone());
        }
    }
}

/// Identifiers inside fenced code blocks of doc comments — doctests
/// exercise API without appearing in any `.rs` root file.
fn doctest_refs(f: &SourceFile, live: &mut BTreeSet<String>) {
    let mut in_fence = false;
    for c in &f.comments {
        let Some(body) = doc_comment_body(&c.text) else {
            in_fence = false;
            continue;
        };
        if body.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            for t in lex(body).tokens {
                if t.kind == TokenKind::Ident {
                    live.insert(t.text);
                }
            }
        }
    }
}

/// `///…` lexes as a comment whose text starts with `/`; `//!…` with
/// `!`. Anything else is a plain comment, not documentation.
fn doc_comment_body(text: &str) -> Option<&str> {
    text.strip_prefix('/').or_else(|| text.strip_prefix('!'))
}

/// The dead-pub rule: every unreachable `pub` item needs a
/// reason-annotated entry in `zen2-lint.deadpub`, stale entries must be
/// removed, and TODO reasons don't count. Not inline-suppressible —
/// like the panic ratchet, the baseline file is the single ledger.
pub fn dead_pub(files: &[SourceFile], baseline: &Baseline) -> Vec<Finding> {
    let dead = dead_pub_items(files);
    let dead_keys: BTreeMap<&str, &DeadItem> = dead.iter().map(|d| (d.key.as_str(), d)).collect();
    let mut out = Vec::new();
    for d in &dead {
        match baseline.entries.get(&d.key) {
            None => out.push(Finding {
                rule: DEAD_PUB,
                rel: d.rel.clone(),
                line: d.line,
                message: format!(
                    "pub {} `{}` is not reachable from any bin/test/bench/doctest root — delete it, narrow it to pub(crate), or add a justified entry via `cargo run -p zen2-lint -- baseline`",
                    d.kind.describe(),
                    d.name
                ),
            }),
            Some(reason) if reason.trim().is_empty() || reason.trim_start().starts_with("TODO") => {
                out.push(Finding {
                    rule: DEAD_PUB,
                    rel: d.rel.clone(),
                    line: d.line,
                    message: format!(
                        "unexplained {DEADPUB_FILE} entry for `{}`: every kept-but-unreachable pub item needs a `# reason`",
                        d.key
                    ),
                })
            }
            Some(_) => {}
        }
    }
    for key in baseline.entries.keys() {
        if !dead_keys.contains_key(key.as_str()) {
            out.push(Finding {
                rule: DEAD_PUB,
                rel: DEADPUB_FILE.to_string(),
                line: 1,
                message: format!(
                    "stale entry `{key}`: the item is reachable again (or gone) — remove the entry, or regenerate via `cargo run -p zen2-lint -- baseline`"
                ),
            });
        }
    }
    out
}
