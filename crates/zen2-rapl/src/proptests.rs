//! Property-based tests of the RAPL accounting pipeline.

use crate::accounting::RaplAccounting;
use crate::model::RaplModel;
use crate::reader::CounterTracker;
use proptest::prelude::*;
use zen2_isa::{KernelClass, SmtMode, WorkloadSet};
use zen2_msr::RaplUnits;

proptest! {
    #![proptest_config(ProptestConfig { cases: 96 })]

    /// Published counters are monotone (pre-wrap) and never ahead of the
    /// continuously integrated energy.
    #[test]
    fn publication_is_monotone(powers in prop::collection::vec(0.0f64..300.0, 1..40)) {
        let mut acc = RaplAccounting::new(1, 1);
        let mut now = 0u64;
        let mut last_pub = 0.0;
        let mut total = 0.0;
        for w in powers {
            let dt = 0.0004; // 400 us steps
            acc.accumulate(dt, &[w / 2.0], &[w]);
            total += w * dt;
            now += 400_000;
            acc.maybe_publish(now);
            let published = acc.package_published_joules(0);
            prop_assert!(published >= last_pub);
            prop_assert!(published <= total + 1e-9);
            last_pub = published;
        }
    }

    /// A tracker polling the quantized counter reconstructs total energy
    /// within quantization error, for any poll pattern that outruns the
    /// wrap interval.
    #[test]
    fn tracker_reconstructs_energy(chunks in prop::collection::vec(0.1f64..50.0, 1..30)) {
        let units = RaplUnits::amd_default();
        let mut acc = RaplAccounting::new(1, 1);
        let mut tracker = CounterTracker::new(0);
        let mut now = 0u64;
        let mut total = 0.0;
        for j in chunks {
            // Deposit `j` joules over 1 ms and publish.
            acc.accumulate(0.001, &[0.0], &[j * 1000.0]);
            total += j;
            now += 1_000_000;
            acc.maybe_publish(now);
            tracker.update(acc.package_counter(0));
        }
        let reconstructed = tracker.total_joules(&units);
        prop_assert!((reconstructed - total).abs() <= units.joules_per_count() * 2.0,
            "reconstructed {reconstructed} vs {total}");
    }

    /// The estimate model is monotone in frequency and temperature for
    /// every kernel.
    #[test]
    fn estimate_is_monotone(idx in 0usize..17, f1 in 1.0f64..3.0, f2 in 1.0f64..3.0) {
        let set = WorkloadSet::paper();
        let kernel = &set.all()[idx];
        if kernel.class == KernelClass::Idle {
            return Ok(());
        }
        let m = RaplModel::zen2();
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        let at = |f: f64| m.core_estimate_w(kernel, SmtMode::Single, f, 0.9, 68.0);
        prop_assert!(at(hi) >= at(lo) - 1e-12);
        let warm = m.core_estimate_w(kernel, SmtMode::Single, lo, 0.9, 80.0);
        prop_assert!(warm >= at(lo));
    }

    /// Package estimates decompose exactly into cores + uncore constant.
    #[test]
    fn package_estimate_decomposes(cores_sum in 0.0f64..400.0, awake in any::<bool>()) {
        let m = RaplModel::zen2();
        let pkg = m.package_estimate_w(cores_sum, awake);
        let uncore = if awake { m.uncore_awake_w } else { m.uncore_pc6_w };
        prop_assert!((pkg - cores_sum - uncore).abs() < 1e-12);
    }
}
