//! The event-based power estimate.

use serde::{Deserialize, Serialize};
use zen2_isa::{ActivityVector, Kernel, SmtMode};

/// AMD's internal power model: per-unit event rates times calibrated
/// weights, plus a thermal-diode leakage term. Deliberately blind to
/// operand data and DRAM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RaplModel {
    /// Base estimate per active core, W per (GHz·V²).
    pub k_base: f64,
    /// Scale on weighted event activity, W per (GHz·V²).
    pub k_units: f64,
    /// Per-unit event weights (the ">1300 critical path monitors ... 48
    /// on-die power supply monitors" distilled into unit coefficients).
    pub unit_weights: ActivityVector,
    /// Leakage term from the thermal diodes, W per °C per core.
    pub temp_coeff_w_per_c: f64,
    /// Reference die temperature for the leakage term, °C.
    pub temp_ref_c: f64,
    /// Uncore estimate per awake package, watts.
    pub uncore_awake_w: f64,
    /// Uncore estimate per sleeping (PC6) package, watts.
    pub uncore_pc6_w: f64,
    /// Estimate jitter (1σ, watts) per core sample: sensor quantization
    /// and model update noise, the spread visible in Fig. 10b.
    pub noise_sigma_w: f64,
}

impl Default for RaplModel {
    fn default() -> Self {
        Self::zen2()
    }
}

impl RaplModel {
    /// The calibrated Rome model. `k_base`/`k_units` are chosen so the
    /// SMU's PPT loop (target 170 W estimated) lands on the paper's
    /// Fig. 6 equilibria: 2.05 GHz with SMT, 2.10 GHz without.
    pub fn zen2() -> Self {
        Self {
            k_base: 0.04,
            k_units: 0.5317,
            unit_weights: ActivityVector {
                frontend: 0.8,
                int_alu: 0.7,
                fp128: 1.0,
                fp256_upper: 1.0,
                load_store: 0.6,
                l2: 0.3,
                l3: 0.4,
            },
            temp_coeff_w_per_c: 0.000_67,
            temp_ref_c: 68.0,
            uncore_awake_w: 42.0,
            uncore_pc6_w: 8.0,
            noise_sigma_w: 0.002,
        }
    }

    /// Estimated power of one active core. Note what is *not* here: no
    /// operand-toggle factor, no DRAM traffic, no per-thread residency
    /// overhead — the blind spots the paper measures.
    pub fn core_estimate_w(
        &self,
        kernel: &Kernel,
        smt: SmtMode,
        freq_ghz: f64,
        voltage_v: f64,
        die_c: f64,
    ) -> f64 {
        assert!(freq_ghz > 0.0 && voltage_v > 0.0, "operating point must be positive");
        let fv2 = freq_ghz * voltage_v * voltage_v;
        let activity = kernel.core_activity(smt).weighted_sum(&self.unit_weights);
        fv2 * (self.k_base + self.k_units * activity)
            + self.temp_coeff_w_per_c * (die_c - self.temp_ref_c)
    }

    /// Estimated power of an idle (C1/C2) core: the event view sees no
    /// activity at all, only the leakage term.
    pub fn idle_core_estimate_w(&self, die_c: f64) -> f64 {
        (self.temp_coeff_w_per_c * (die_c - self.temp_ref_c)).max(0.0)
    }

    /// Package estimate: sum of core estimates plus the uncore constant.
    pub fn package_estimate_w(&self, core_estimates_sum_w: f64, awake: bool) -> f64 {
        core_estimates_sum_w + if awake { self.uncore_awake_w } else { self.uncore_pc6_w }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zen2_isa::{KernelClass, OperandWeight, WorkloadSet};
    use zen2_power::CorePowerModel;

    fn set() -> WorkloadSet {
        WorkloadSet::paper()
    }

    #[test]
    fn firestarter_estimate_hits_ppt_at_fig6_equilibria() {
        // At 2.10 GHz single-thread the estimate must read ~170 W per
        // package: 42 W uncore + 32 cores x 4.0 W.
        let m = RaplModel::zen2();
        let fs = set().kernel(KernelClass::Firestarter).clone();
        let single = m.core_estimate_w(&fs, SmtMode::Single, 2.1, 0.935_714, 68.0);
        let pkg = m.package_estimate_w(32.0 * single, true);
        assert!((pkg - 170.0).abs() < 2.0, "single-thread estimate {pkg:.1} W");
        // With SMT the same 170 W is reached at ~2.05 GHz.
        let smt = m.core_estimate_w(&fs, SmtMode::Both, 2.05, 0.928_571, 68.0);
        let pkg = m.package_estimate_w(32.0 * smt, true);
        assert!((pkg - 170.0).abs() < 2.0, "SMT estimate {pkg:.1} W");
    }

    #[test]
    fn estimate_is_blind_to_operand_weight() {
        // True power swings 0.30 W/core between weights; the estimate is
        // bit-identical (the temperature term enters only through die_c).
        let m = RaplModel::zen2();
        let vx = set().kernel(KernelClass::VXorps).clone();
        let a = m.core_estimate_w(&vx, SmtMode::Both, 2.5, 1.0, 70.0);
        let b = m.core_estimate_w(&vx, SmtMode::Both, 2.5, 1.0, 70.0);
        assert_eq!(a, b);
        let truth = CorePowerModel::zen2();
        let t0 = truth.active_power_w(&vx, SmtMode::Both, 2.5, 1.0, OperandWeight::ZERO);
        let t1 = truth.active_power_w(&vx, SmtMode::Both, 2.5, 1.0, OperandWeight::FULL);
        assert!(t1 - t0 > 0.2, "truth must swing while the estimate cannot");
    }

    #[test]
    fn temperature_is_the_only_data_path() {
        let m = RaplModel::zen2();
        let vx = set().kernel(KernelClass::VXorps).clone();
        let cool = m.core_estimate_w(&vx, SmtMode::Both, 2.5, 1.0, 70.0);
        let warm = m.core_estimate_w(&vx, SmtMode::Both, 2.5, 1.0, 72.4);
        let shift = warm - cool;
        // Fig. 10b: average shift within 0.08 % of ~2 W.
        assert!(shift > 0.0 && shift < 0.005, "indirect shift {shift} W");
    }

    #[test]
    fn no_dram_term_exists() {
        // memory_read at identical core settings estimates the same power
        // regardless of how much DRAM traffic it generates — there is no
        // traffic input to the model at all.
        let m = RaplModel::zen2();
        let mr = set().kernel(KernelClass::MemoryRead).clone();
        let est = m.core_estimate_w(&mr, SmtMode::Single, 2.5, 1.0, 68.0);
        // The estimate only carries the (small) core-side activity.
        assert!(est < 2.0, "memory core estimate {est:.2} W is core-side only");
    }

    #[test]
    fn smt_estimate_ratio_is_smaller_than_truth() {
        let m = RaplModel::zen2();
        let truth = CorePowerModel::zen2();
        let fs = set().kernel(KernelClass::Firestarter).clone();
        let est_ratio = m.core_estimate_w(&fs, SmtMode::Both, 2.1, 0.9357, 68.0)
            / m.core_estimate_w(&fs, SmtMode::Single, 2.1, 0.9357, 68.0);
        let true_ratio = truth.active_power_w(&fs, SmtMode::Both, 2.1, 0.9357, OperandWeight::HALF)
            / truth.active_power_w(&fs, SmtMode::Single, 2.1, 0.9357, OperandWeight::HALF);
        assert!(est_ratio < true_ratio, "est {est_ratio:.3} vs true {true_ratio:.3}");
        assert!(est_ratio > 1.0 && est_ratio < 1.08);
    }

    #[test]
    fn idle_core_estimate_is_tiny() {
        let m = RaplModel::zen2();
        assert_eq!(m.idle_core_estimate_w(68.0), 0.0);
        assert!(m.idle_core_estimate_w(80.0) < 0.01);
    }

    #[test]
    fn package_estimate_adds_uncore() {
        let m = RaplModel::zen2();
        assert_eq!(m.package_estimate_w(100.0, true), 142.0);
        assert_eq!(m.package_estimate_w(0.0, false), 8.0);
    }
}
