//! AMD Zen 2 RAPL: a *model*, not a measurement.
//!
//! The paper's Section VII establishes that Rome's RAPL implementation is
//! an event-based estimate ("the energy data is modeled, not measured"),
//! with three structural blind spots this crate reproduces faithfully:
//!
//! 1. **No DRAM domain** — DIMM power never appears in any counter, and
//!    the package domain "reports significantly lower power compared to
//!    the external measurement" for memory workloads.
//! 2. **Operand data is invisible** — the model counts events (uops per
//!    unit), not bit toggles, so the 21 W `vxorps` Hamming-weight swing of
//!    Fig. 10a collapses to sub-0.1 % differences in RAPL, visible only
//!    through the indirect temperature/leakage term.
//! 3. **SMT under-accounting** — the event view scales with retired-uop
//!    activity, which under-estimates the true cost of keeping two
//!    hardware threads resident; that is why Fig. 6 shows identical 170 W
//!    RAPL readings while the wall meter separates the SMT and non-SMT
//!    runs by 20 W.
//!
//! The same estimate doubles as the SMU's feedback signal for its PPT
//! control loop (`zen2-sim::smu`), mirroring the real part where the
//! power-management firmware and the RAPL MSRs share one model.
//!
//! Counters update every 1 ms ([`RaplAccounting`]), are quantized to the
//! 2⁻¹⁶ J energy-status unit, and wrap at 32 bits; [`reader`] provides the
//! wrap-aware polling tools the paper's `x86_energy` library implements.

pub mod accounting;
pub mod model;
pub mod reader;

#[cfg(test)]
mod proptests;

pub use accounting::RaplAccounting;
pub use model::RaplModel;
pub use reader::{CounterTracker, RaplReader};
