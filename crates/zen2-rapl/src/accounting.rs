//! Energy-counter accounting with the 1 ms publication cadence.
//!
//! The paper: "We measured an update rate of 1 ms for RAPL by polling the
//! MSRs via the msr kernel module." Energy accrues continuously inside
//! the SMU, but the MSR-visible counters step only at update boundaries;
//! between updates a reader sees a frozen value. Counters are quantized
//! to the energy-status unit and wrap at 32 bits.

use serde::{Deserialize, Serialize};
use zen2_msr::RaplUnits;

/// Time in nanoseconds (the simulator's clock domain).
pub type Ns = u64;

/// Nanoseconds between counter publications.
pub const UPDATE_PERIOD_NS: Ns = 1_000_000;

/// Per-domain energy accounting for a whole machine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RaplAccounting {
    units: RaplUnits,
    /// Continuously-integrated joules per core (the SMU's internal view).
    core_pending_j: Vec<f64>,
    /// Continuously-integrated joules per package.
    pkg_pending_j: Vec<f64>,
    /// Published joules per core (what the MSR shows, pre-quantization).
    core_published_j: Vec<f64>,
    /// Published joules per package.
    pkg_published_j: Vec<f64>,
    /// Timestamp of the last publication boundary.
    last_publish_ns: Ns,
}

impl RaplAccounting {
    /// Creates accounting for `cores` cores and `packages` packages.
    pub fn new(cores: usize, packages: usize) -> Self {
        Self {
            units: RaplUnits::amd_default(),
            core_pending_j: vec![0.0; cores],
            pkg_pending_j: vec![0.0; packages],
            core_published_j: vec![0.0; cores],
            pkg_published_j: vec![0.0; packages],
            last_publish_ns: 0,
        }
    }

    /// The unit configuration (for the `RAPL_PWR_UNIT` MSR).
    pub fn units(&self) -> &RaplUnits {
        &self.units
    }

    /// Integrates estimated power over an interval. `core_w[i]` and
    /// `pkg_w[p]` are the estimated powers during the whole interval.
    ///
    /// # Panics
    /// Panics if slice lengths disagree with the machine shape.
    pub fn accumulate(&mut self, dt_s: f64, core_w: &[f64], pkg_w: &[f64]) {
        assert!(dt_s >= 0.0, "time cannot run backwards");
        assert_eq!(core_w.len(), self.core_pending_j.len(), "core count mismatch");
        assert_eq!(pkg_w.len(), self.pkg_pending_j.len(), "package count mismatch");
        for (acc, &w) in self.core_pending_j.iter_mut().zip(core_w) {
            *acc += w * dt_s;
        }
        for (acc, &w) in self.pkg_pending_j.iter_mut().zip(pkg_w) {
            *acc += w * dt_s;
        }
    }

    /// Publishes pending energy to the MSR-visible counters if `now_ns`
    /// has crossed at least one 1 ms boundary since the last publication.
    /// Returns `true` if the visible counters changed.
    pub fn maybe_publish(&mut self, now_ns: Ns) -> bool {
        let boundary = now_ns - now_ns % UPDATE_PERIOD_NS;
        if boundary <= self.last_publish_ns && now_ns != 0 {
            return false;
        }
        self.last_publish_ns = boundary;
        for (publ, pend) in self.core_published_j.iter_mut().zip(&self.core_pending_j) {
            *publ = *pend;
        }
        for (publ, pend) in self.pkg_published_j.iter_mut().zip(&self.pkg_pending_j) {
            *publ = *pend;
        }
        true
    }

    /// The raw 32-bit counter value for a core domain.
    pub fn core_counter(&self, core: usize) -> u32 {
        quantize(self.core_published_j[core], &self.units)
    }

    /// The raw 32-bit counter value for a package domain.
    pub fn package_counter(&self, package: usize) -> u32 {
        quantize(self.pkg_published_j[package], &self.units)
    }

    /// Total (unquantized, unwrapped) published joules for a package —
    /// for test assertions, not visible to simulated software.
    pub fn package_published_joules(&self, package: usize) -> f64 {
        self.pkg_published_j[package]
    }

    /// Total published joules for a core.
    pub fn core_published_joules(&self, core: usize) -> f64 {
        self.core_published_j[core]
    }
}

fn quantize(joules: f64, units: &RaplUnits) -> u32 {
    (units.joules_to_counts(joules) & 0xFFFF_FFFF) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_freeze_between_updates() {
        let mut acc = RaplAccounting::new(2, 1);
        acc.accumulate(0.0005, &[10.0, 10.0], &[30.0]);
        // 0.5 ms in: nothing published yet beyond the t=0 snapshot.
        assert!(!acc.maybe_publish(500_000));
        assert_eq!(acc.package_counter(0), 0);
        // Crossing 1 ms publishes.
        acc.accumulate(0.0005, &[10.0, 10.0], &[30.0]);
        assert!(acc.maybe_publish(1_000_000));
        let j = acc.package_published_joules(0);
        assert!((j - 0.030).abs() < 1e-12);
    }

    #[test]
    fn update_rate_is_observable_as_1ms() {
        // Poll every 100 us; distinct counter values must appear at 1 ms
        // spacing (the Section VII measurement).
        let mut acc = RaplAccounting::new(1, 1);
        let mut change_times = Vec::new();
        let mut last = acc.package_counter(0);
        for step in 1..=50 {
            let now = step * 100_000u64;
            acc.accumulate(0.0001, &[5.0], &[50.0]);
            acc.maybe_publish(now);
            let v = acc.package_counter(0);
            if v != last {
                change_times.push(now);
                last = v;
            }
        }
        assert!(change_times.len() >= 4, "changes {change_times:?}");
        for w in change_times.windows(2) {
            assert_eq!(w[1] - w[0], 1_000_000, "updates must be 1 ms apart");
        }
    }

    #[test]
    fn quantization_uses_esu() {
        let mut acc = RaplAccounting::new(1, 1);
        acc.accumulate(1.0, &[1.0], &[1.0]);
        acc.maybe_publish(1_000_000_000);
        // 1 J at 2^-16 J/count = 65536 counts.
        assert_eq!(acc.core_counter(0), 65536);
    }

    #[test]
    fn counter_wraps_at_32_bits() {
        let mut acc = RaplAccounting::new(1, 1);
        // Just over the wrap: 2^32 counts = 65536 J at default units.
        acc.accumulate(1.0, &[65537.0], &[65537.0]);
        acc.maybe_publish(1_000_000_000);
        assert_eq!(acc.core_counter(0), 65536, "one joule past the wrap");
    }

    #[test]
    #[should_panic(expected = "core count mismatch")]
    fn shape_mismatch_is_a_bug() {
        let mut acc = RaplAccounting::new(2, 1);
        acc.accumulate(0.001, &[1.0], &[1.0]);
    }
}
