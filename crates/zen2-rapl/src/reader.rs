//! Software-side RAPL reading (the paper's `x86_energy` role).
//!
//! Readers poll the 32-bit energy MSRs and must handle wraparound — at
//! the default 15.26 µJ unit and a 180 W package the counter wraps every
//! ~6 minutes. [`CounterTracker`] accumulates deltas across wraps;
//! [`RaplReader`] layers the MSR addressing on top of `zen2-msr`.

use serde::{Deserialize, Serialize};
use zen2_msr::{address, rapl::counter_delta, MsrError, MsrFile, RaplUnits};
use zen2_topology::{ThreadId, Topology};

/// Wrap-aware accumulator over a 32-bit energy counter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CounterTracker {
    last_raw: u32,
    total_counts: u64,
}

impl CounterTracker {
    /// Starts tracking from an initial raw counter value.
    pub fn new(initial_raw: u32) -> Self {
        Self { last_raw: initial_raw, total_counts: 0 }
    }

    /// Feeds a new raw reading; returns the delta in counts since the
    /// previous reading (wrap-corrected).
    pub fn update(&mut self, raw: u32) -> u64 {
        let delta = counter_delta(self.last_raw, raw);
        self.last_raw = raw;
        self.total_counts += delta;
        delta
    }

    /// Total accumulated energy in joules.
    pub fn total_joules(&self, units: &RaplUnits) -> f64 {
        units.counts_to_joules(self.total_counts)
    }
}

/// Reads core and package energy through the MSR interface.
#[derive(Debug)]
pub struct RaplReader {
    units: RaplUnits,
    core_trackers: Vec<CounterTracker>,
    pkg_trackers: Vec<CounterTracker>,
    pkg_lead_thread: Vec<ThreadId>,
    threads_per_core: usize,
}

impl RaplReader {
    /// Initializes trackers for every core and package, reading the unit
    /// register and initial counter values.
    pub fn new(topology: &Topology, msrs: &MsrFile) -> Result<Self, MsrError> {
        let units = RaplUnits::decode(msrs.read(ThreadId(0), address::RAPL_PWR_UNIT)?);
        let threads_per_core = topology.threads_per_core();
        let mut core_trackers = Vec::with_capacity(topology.num_cores());
        for core in topology.all_cores() {
            let thread = topology.threads_of_core(core)[0].expect("cores have a first thread");
            let raw = msrs.read(thread, address::CORE_ENERGY_STAT)? as u32;
            core_trackers.push(CounterTracker::new(raw));
        }
        let mut pkg_trackers = Vec::with_capacity(topology.num_sockets());
        let mut pkg_lead_thread = Vec::with_capacity(topology.num_sockets());
        for socket in topology.all_sockets() {
            let lead = ThreadId(
                (socket.0 as usize * topology.cores_per_socket() * threads_per_core) as u32,
            );
            let raw = msrs.read(lead, address::PKG_ENERGY_STAT)? as u32;
            pkg_trackers.push(CounterTracker::new(raw));
            pkg_lead_thread.push(lead);
        }
        Ok(Self { units, core_trackers, pkg_trackers, pkg_lead_thread, threads_per_core })
    }

    /// The decoded unit register.
    pub fn units(&self) -> &RaplUnits {
        &self.units
    }

    /// Polls every counter once; call periodically (well under the wrap
    /// interval) to keep totals exact.
    pub fn poll(&mut self, msrs: &MsrFile) -> Result<(), MsrError> {
        for (core, tracker) in self.core_trackers.iter_mut().enumerate() {
            let thread = ThreadId((core * self.threads_per_core) as u32);
            tracker.update(msrs.read(thread, address::CORE_ENERGY_STAT)? as u32);
        }
        for (pkg, tracker) in self.pkg_trackers.iter_mut().enumerate() {
            tracker.update(msrs.read(self.pkg_lead_thread[pkg], address::PKG_ENERGY_STAT)? as u32);
        }
        Ok(())
    }

    /// Accumulated joules for a core since construction.
    pub fn core_joules(&self, core: usize) -> f64 {
        self.core_trackers[core].total_joules(&self.units)
    }

    /// Accumulated joules for a package since construction.
    pub fn package_joules(&self, package: usize) -> f64 {
        self.pkg_trackers[package].total_joules(&self.units)
    }

    /// Sum of all package domains (the paper's "RAPL Sum Package").
    pub fn package_sum_joules(&self) -> f64 {
        (0..self.pkg_trackers.len()).map(|p| self.package_joules(p)).sum()
    }

    /// Sum of all core domains (the paper's "RAPL Sum Core").
    pub fn core_sum_joules(&self) -> f64 {
        (0..self.core_trackers.len()).map(|c| self.core_joules(c)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zen2_msr::address as a;

    #[test]
    fn tracker_accumulates_across_wrap() {
        let mut t = CounterTracker::new(u32::MAX - 10);
        assert_eq!(t.update(u32::MAX), 10);
        assert_eq!(t.update(20), 21);
        let units = RaplUnits::amd_default();
        let expected = units.counts_to_joules(31);
        assert!((t.total_joules(&units) - expected).abs() < 1e-15);
    }

    #[test]
    fn reader_reads_poked_counters() {
        let topo = Topology::epyc_7502_2s();
        let mut msrs = MsrFile::new(&topo);
        let mut reader = RaplReader::new(&topo, &msrs).unwrap();

        // Hardware deposits one joule into core 0 and both packages.
        let units = RaplUnits::amd_default();
        let one_joule = units.joules_to_counts(1.0);
        msrs.poke(ThreadId(0), a::CORE_ENERGY_STAT, one_joule);
        msrs.poke(ThreadId(0), a::PKG_ENERGY_STAT, one_joule);
        msrs.poke(ThreadId(64), a::PKG_ENERGY_STAT, one_joule * 2);
        reader.poll(&msrs).unwrap();

        assert!((reader.core_joules(0) - 1.0).abs() < 1e-4);
        assert_eq!(reader.core_joules(1), 0.0);
        assert!((reader.package_joules(0) - 1.0).abs() < 1e-4);
        assert!((reader.package_joules(1) - 2.0).abs() < 1e-4);
        assert!((reader.package_sum_joules() - 3.0).abs() < 1e-4);
    }

    #[test]
    fn core_domain_is_shared_by_smt_siblings() {
        // Both threads of a core expose the same core-energy counter; the
        // reader polls through the first sibling.
        let topo = Topology::epyc_7502_2s();
        let mut msrs = MsrFile::new(&topo);
        let mut reader = RaplReader::new(&topo, &msrs).unwrap();
        let units = RaplUnits::amd_default();
        msrs.poke(ThreadId(2), a::CORE_ENERGY_STAT, units.joules_to_counts(5.0));
        reader.poll(&msrs).unwrap();
        assert!((reader.core_joules(1) - 5.0).abs() < 1e-4);
    }

    #[test]
    fn core_sum_covers_all_cores() {
        let topo = Topology::epyc_7502_2s();
        let mut msrs = MsrFile::new(&topo);
        let mut reader = RaplReader::new(&topo, &msrs).unwrap();
        let units = RaplUnits::amd_default();
        for core in 0..64u32 {
            msrs.poke(ThreadId(core * 2), a::CORE_ENERGY_STAT, units.joules_to_counts(0.5));
        }
        reader.poll(&msrs).unwrap();
        assert!((reader.core_sum_joules() - 32.0).abs() < 0.01);
    }
}
