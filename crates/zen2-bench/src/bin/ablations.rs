//! Functional ablations: re-run key paper results with one mechanism
//! removed at a time, showing that each modeled mechanism is load-bearing
//! for the corresponding observation.
//!
//! ```sh
//! cargo run --release -p zen2-bench --bin ablations
//! ```

use zen2_isa::{KernelClass, OperandWeight};
use zen2_sim::perf::ThreadCounters;
use zen2_sim::{SimConfig, System};
use zen2_topology::{CoreId, ThreadId};

fn table1_cell(cfg: SimConfig) -> f64 {
    // The Table I (2.2 GHz under 2.5 GHz neighbors) cell.
    let mut sys = System::new(cfg, 1);
    for t in 0..8u32 {
        sys.set_workload(ThreadId(t), KernelClass::BusyWait, OperandWeight::HALF);
        sys.set_thread_pstate_mhz(ThreadId(t), if t < 2 { 2200 } else { 2500 });
    }
    sys.run_for_secs(0.05);
    let before = sys.counters(ThreadId(0));
    sys.run_for_secs(0.2);
    ThreadCounters::effective_ghz(&before, &sys.counters(ThreadId(0)), 2.5)
}

fn firestarter_equilibrium(cfg: SimConfig) -> (f64, f64) {
    let mut sys = System::new(cfg, 2);
    for t in 0..128u32 {
        sys.set_workload(ThreadId(t), KernelClass::Firestarter, OperandWeight::HALF);
    }
    sys.run_for_secs(0.2);
    sys.preheat();
    sys.run_for_secs(0.1);
    let t0 = sys.now_ns();
    sys.run_for_secs(0.5);
    (sys.effective_core_ghz(CoreId(0)), sys.trace_mean_w(t0, sys.now_ns()))
}

fn one_c1_power(cfg: SimConfig) -> f64 {
    let mut sys = System::new(cfg, 3);
    sys.set_cstate_enabled(ThreadId(64), 2, false); // a socket-1 thread
    sys.run_for_secs(0.05);
    let t0 = sys.now_ns();
    sys.run_for_secs(0.3);
    sys.trace_mean_w(t0, sys.now_ns())
}

fn fast_path_fraction(cfg: SimConfig) -> f64 {
    // Fraction of quick 2.2->2.5 GHz returns that complete in under 5 us.
    let mut sys = System::new(cfg, 4);
    sys.set_workload(ThreadId(0), KernelClass::BusyWait, OperandWeight::HALF);
    sys.run_for_secs(0.02);
    let mut fast = 0;
    let n = 200;
    for _ in 0..n {
        sys.set_thread_pstate_mhz(ThreadId(1), 2200);
        sys.set_thread_pstate_mhz(ThreadId(0), 2200);
        sys.run_for_secs(0.002);
        let t0 = sys.now_ns();
        // The core transition triggers on whichever sibling request first
        // raises the core-level maximum.
        let a = sys.set_thread_pstate_mhz(ThreadId(1), 2500);
        let b = sys.set_thread_pstate_mhz(ThreadId(0), 2500);
        if let Some(p) = a.or(b) {
            if p.completes_at - t0 < 5_000 {
                fast += 1;
            }
        }
        sys.run_for_secs(0.002);
    }
    fast as f64 / n as f64
}

fn main() {
    println!("=== zen2-ee ablation study: remove one mechanism at a time ===\n");

    println!("[1] CCX clock coupling -> Table I cell (set 2.2 GHz, neighbors 2.5 GHz)");
    let base = table1_cell(SimConfig::epyc_7502_2s());
    let mut cfg = SimConfig::epyc_7502_2s();
    cfg.ccx_coupling = false;
    let ablated = table1_cell(cfg);
    println!("    with coupling (paper: 2.000 GHz): {base:.3} GHz");
    println!("    without coupling:                 {ablated:.3} GHz (the penalty disappears)\n");

    println!("[2] PPT/EDC telemetry loop -> FIRESTARTER equilibrium (paper: 2.03 GHz, 509 W)");
    let (f_base, w_base) = firestarter_equilibrium(SimConfig::epyc_7502_2s());
    let mut cfg = SimConfig::epyc_7502_2s();
    cfg.controller.enabled = false;
    let (f_abl, w_abl) = firestarter_equilibrium(cfg);
    println!("    with the manager:    {f_base:.3} GHz, {w_base:.0} W AC");
    println!("    without the manager: {f_abl:.3} GHz, {w_abl:.0} W AC (unconstrained draw)\n");

    println!("[3] global package-C6 criterion -> one C1 thread on socket 1 (paper: +81.2 W)");
    let base = one_c1_power(SimConfig::epyc_7502_2s());
    let mut cfg = SimConfig::epyc_7502_2s();
    cfg.global_package_c6 = false;
    let ablated = one_c1_power(cfg);
    println!("    global criterion (Rome behavior): {base:.1} W");
    println!("    per-package criterion (ablation): {ablated:.1} W (socket 0 stays asleep)\n");

    println!("[4] SMU settle-window fast path -> instantaneous 2.2->2.5 GHz returns (SS V-B)");
    let base = fast_path_fraction(SimConfig::epyc_7502_2s());
    let mut cfg = SimConfig::epyc_7502_2s();
    cfg.smu.fast_path_enabled = false;
    let ablated = fast_path_fraction(cfg);
    println!("    with the latched state: {:.0} % of quick returns are ~1 us", base * 100.0);
    println!("    without it:             {:.0} %\n", ablated * 100.0);

    println!("[5] offline-parking kernel behavior -> SS VI-B anomaly");
    let mut sys = System::new(SimConfig::epyc_7502_2s(), 6);
    sys.set_online(ThreadId(1), false);
    sys.run_for_secs(0.2);
    let anomalous = sys.ac_power_w();
    let mut cfg = SimConfig::epyc_7502_2s();
    cfg.os.offline_parks_in_c1 = false;
    let mut sys = System::new(cfg, 6);
    sys.set_online(ThreadId(1), false);
    sys.run_for_secs(0.2);
    println!("    offline parks in C1 (observed):  {anomalous:.1} W");
    println!("    clean parking (hypothetical):    {:.1} W", sys.ac_power_w());
}
