//! Sweep-throughput trajectory point: times the representative
//! `bench_sweep` grids once each (10^3 and 10^4 cases in both execution
//! styles, 10^5 streaming-only — materializing that grid would defeat
//! the bounded-memory point) and writes `BENCH_10.json` at the
//! workspace root — the next point in the `BENCH_*.json` history the
//! ROADMAP's perf trajectory accumulates PR over PR.
//!
//! New over `BENCH_9.json`: the fleet point. The 10^5-case grid runs
//! once as a single checkpointed process and once split `--shard-range`
//! style over three OS processes (the bench re-execs itself per shard),
//! whose range checkpoints are then merged with `Checkpoint::merge` —
//! wall-clock for both layouts plus the merge cost itself go on the
//! record, and the merged checkpoint is asserted byte-identical to the
//! single-process file while we're at it.
//!
//! Carried from `BENCH_9.json`: the torture point. A 10^4-case seeded
//! random-scenario soak (`zen2_sim::torture`) streams through the same
//! worker pool with the full invariant audit on every run — generated
//! scenarios are far heavier than the uniform throughput grid (multi-
//! step timelines, trace probes, snapshot round-trips), so this is the
//! worst-case cases/sec figure and the budget the CI `torture-smoke`
//! step is sized against.
//!
//! Also carried from `BENCH_8.json`: the telemetry phase timers. A
//! second 10^5 streaming run executes with a span recorder attached,
//! breaking the per-case cost into the engine's phases (fork, sim,
//! reduce, checkpoint, …), and a dedicated kernel grid reports per-case
//! sim cost for the hottest simulator kernels — the numbers that tell
//! the next optimization PR where the time actually goes.
//!
//! ```sh
//! cargo run --release -p zen2-bench --bin bench_trajectory
//! ```
//!
//! Unlike the Criterion benches this is a one-shot measurement: the
//! artifact is a committed coarse trend line (is a PR a 2× regression?),
//! not a statistically sampled comparison. Run it release-mode on an
//! otherwise idle machine.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use zen2_isa::{KernelClass, OperandWeight};
use zen2_obs::clock;
use zen2_sim::checkpoint::{run_resumable, CheckpointState};
use zen2_sim::obs::{Attr, AttrValue, Recorder, SpanId, SPAN_CASE, SPAN_SIM};
use zen2_sim::stats::OnlineStats;
use zen2_sim::time::MICROSECOND;
use zen2_sim::{
    Axis, Case, Checkpoint, CheckpointError, CheckpointSpec, GroupedStats, Probe, Run, Session,
    ShardRange, SimConfig, Sweep, Window,
};
use zen2_topology::ThreadId;

const WORKERS: usize = 4;
const SHARD: usize = 16;

/// The same representative grid as `benches/bench_sweep.rs`: load
/// levels × repetitions, one instantaneous power read per case.
fn grid(cases: usize) -> Sweep {
    let levels = 8usize;
    let mut base = zen2_sim::Scenario::new();
    base.probe("ac", Probe::AcPowerW, Window::at(20 * MICROSECOND));
    let mut load = Axis::new("busy_threads");
    for n in 1..=levels as u32 {
        load = load.with(format!("{n}"), move |draft| {
            let mut at = draft.scenario.at(0);
            for t in 0..n {
                at = at.workload(ThreadId(t), KernelClass::BusyWait, OperandWeight::HALF);
            }
        });
    }
    Sweep::new("bench", SimConfig::epyc_7502_2s())
        .scenario(base)
        .seed(1)
        .axis(load)
        .axis(Axis::param("rep", (0..cases / levels).map(|r| r as f64)))
}

/// The hottest simulator kernels, by how much machinery one simulated
/// microsecond drags in: FIRESTARTER's near-peak utilization, the
/// Fig. 9 compute/memory mixes, and the busy-wait baseline the
/// throughput grid is built from.
const HOT_KERNELS: &[(&str, KernelClass)] = &[
    ("busy_wait", KernelClass::BusyWait),
    ("compute", KernelClass::Compute),
    ("firestarter", KernelClass::Firestarter),
    ("matmul", KernelClass::Matmul),
    ("memory_read", KernelClass::MemoryRead),
];

/// A per-kernel cost grid: each case runs one hot kernel on four
/// threads, repeated `reps` times per kernel.
fn kernel_grid(reps: usize) -> Sweep {
    let mut base = zen2_sim::Scenario::new();
    base.probe("ac", Probe::AcPowerW, Window::at(20 * MICROSECOND));
    let mut kernel = Axis::new("kernel");
    for (name, class) in HOT_KERNELS {
        let class = *class;
        kernel = kernel.with(*name, move |draft| {
            let mut at = draft.scenario.at(0);
            for t in 0..4u32 {
                at = at.workload(ThreadId(t), class, OperandWeight::HALF);
            }
        });
    }
    Sweep::new("kernel-cost", SimConfig::epyc_7502_2s())
        .scenario(base)
        .seed(2)
        .axis(kernel)
        .axis(Axis::param("rep", (0..reps).map(|r| r as f64)))
}

struct Point {
    cases: usize,
    style: &'static str,
    cases_per_sec: f64,
}

/// The fleet point's accumulator bundle: a per-cell grouped reduction
/// keyed by every axis, the layout the experiment modules use — grouped
/// rows merge at the file level, whereas a whole-grid *single*
/// accumulator would straddle the shard cuts and force the typed
/// `Merge` escape hatch.
struct AcGrid(GroupedStats<OnlineStats>);

impl CheckpointState for AcGrid {
    fn save_into(&self, checkpoint: &mut Checkpoint) {
        checkpoint.set_grouped("ac", &self.0);
    }
    fn restore_from(&mut self, checkpoint: &Checkpoint) -> Result<(), CheckpointError> {
        self.0 = checkpoint.grouped("ac", &self.0)?;
        Ok(())
    }
    fn fold(&mut self, index: usize, run: Run) {
        self.0.entry(index).push(run.watts("ac"));
    }
}

/// Cases in the fleet-point grid (the 10^5 streaming grid above).
const FLEET_CASES: usize = 100_000;
/// Processes the fleet layout splits the grid over.
const FLEET_PROCESSES: usize = 3;
/// Streaming shard size for the fleet point: with 10^5 grouped rows a
/// checkpoint save is O(rows), so the boundary cadence is sized to the
/// grid (one save per 10^4 cases) rather than the default 64-case
/// groups — the granularity knob `docs/SWEEPS.md` tells real runs to
/// turn for exactly this reason.
const FLEET_SHARD: usize = 2_500;

/// Runs one `--shard-range`-style slice of the fleet grid to a range
/// checkpoint — the child-process body of the fleet point (and, with a
/// `0/1` range, the single-process baseline).
fn run_fleet_shard(spec: &CheckpointSpec) {
    let sweep = grid(FLEET_CASES);
    let session = Session::new().workers(WORKERS).shard_size(FLEET_SHARD);
    let mut state = AcGrid(GroupedStats::new(&sweep, &["busy_threads", "rep"]));
    run_resumable(&sweep, vec![], &session, spec, &mut state).expect("bench grid checkpoints");
}

struct FleetPoint {
    single_process_s: f64,
    fleet_s: f64,
    merge_ms: f64,
}

/// Times the 10^5 grid single-process vs split over three OS processes
/// (re-execing this binary per shard), then times merging the range
/// checkpoints and asserts the merged file is byte-identical to the
/// single-process one.
fn measure_fleet() -> FleetPoint {
    let tmp = |tag: &str| {
        std::env::temp_dir().join(format!("zen2-bench-fleet-{tag}-{}", std::process::id()))
    };
    let single = tmp("single");
    let t = clock::now_ns();
    run_fleet_shard(&CheckpointSpec {
        shard: Some(ShardRange { index: 0, of: 1 }),
        ..CheckpointSpec::at(&single)
    });
    let single_process_s = clock::secs_since(t);

    let exe = std::env::current_exe().expect("bench locates itself");
    let shard_paths: Vec<PathBuf> =
        (0..FLEET_PROCESSES).map(|i| tmp(&format!("shard{i}"))).collect();
    let t = clock::now_ns();
    let children: Vec<_> = shard_paths
        .iter()
        .enumerate()
        .map(|(i, path)| {
            std::process::Command::new(&exe)
                .arg("--fleet-shard")
                .arg(format!("{i}/{FLEET_PROCESSES}"))
                .arg(path)
                .stdout(std::process::Stdio::null())
                .spawn()
                .expect("shard process spawns")
        })
        .collect();
    for mut child in children {
        assert!(child.wait().expect("shard process reaps").success(), "shard process failed");
    }
    let fleet_s = clock::secs_since(t);

    let t = clock::now_ns();
    let mut merged = Checkpoint::load(&shard_paths[0]).expect("shard 0 checkpoint loads");
    for path in &shard_paths[1..] {
        let shard = Checkpoint::load(path).expect("shard checkpoint loads");
        merged.merge(&shard).expect("adjacent shards merge");
    }
    let merge_ms = clock::secs_since(t) * 1e3;
    assert!(merged.is_complete(), "merged fleet checkpoint covers {:?}", merged.covered());

    let merged_path = tmp("merged");
    merged.save(&merged_path).expect("merged checkpoint saves");
    let merged_bytes = fs::read_to_string(&merged_path).expect("merged checkpoint reads");
    let single_bytes = fs::read_to_string(&single).expect("single checkpoint reads");
    assert_eq!(merged_bytes, single_bytes, "fleet merge is not byte-identical");
    for path in shard_paths.iter().chain([&single, &merged_path]) {
        let _ = fs::remove_file(path);
    }
    FleetPoint { single_process_s, fleet_s, merge_ms }
}

/// Torture throughput: seeded random scenarios streamed through the
/// worker pool with the full invariant audit on every run — generation,
/// simulation, and checking all on the clock.
fn measure_torture(cases: usize) -> Point {
    let session = Session::new().workers(WORKERS).shard_size(SHARD);
    let t = clock::now_ns();
    let mut violations = 0usize;
    let n = session
        .run_streaming(zen2_sim::torture::cases(1, cases as u64), |i, run| {
            let case = zen2_sim::torture::generate_case(1, i as u64);
            violations += zen2_sim::torture::check_case(&case, &run).len();
        })
        .expect("generated cases validate");
    assert_eq!(n, cases);
    assert_eq!(violations, 0, "torture bench found invariant violations");
    Point { cases, style: "torture", cases_per_sec: cases as f64 / clock::secs_since(t) }
}

fn measure(cases: usize, with_materialized: bool) -> Vec<Point> {
    let sweep = grid(cases);
    assert_eq!(sweep.len(), cases);
    let session = Session::new().workers(WORKERS).shard_size(SHARD);

    let t = clock::now_ns();
    let mut stats = OnlineStats::new();
    let n = session
        .run_streaming(sweep.cases(), |_, run| stats.push(run.watts("ac")))
        .expect("sweep validates");
    assert_eq!(n, cases);
    let mut points = vec![Point {
        cases,
        style: "streaming",
        cases_per_sec: cases as f64 / clock::secs_since(t),
    }];

    if with_materialized {
        let t = clock::now_ns();
        let materialized: Vec<Case> = sweep.cases().collect();
        let runs = session.run(&materialized).expect("sweep validates");
        assert_eq!(runs.len(), cases);
        points.push(Point {
            cases,
            style: "materialized",
            cases_per_sec: cases as f64 / clock::secs_since(t),
        });
    }
    points
}

/// Span-duration totals per phase name, plus per-kernel sim-span
/// totals (the kernel comes from the parent `case` span's label).
#[derive(Default)]
struct PhaseRecorder {
    inner: Mutex<PhaseState>,
}

#[derive(Default)]
struct PhaseState {
    open: BTreeMap<u64, Open>,
    phases: BTreeMap<&'static str, Acc>,
    sim_by_kernel: BTreeMap<String, Acc>,
}

struct Open {
    name: &'static str,
    t: u64,
    kernel: Option<String>,
}

#[derive(Default, Clone)]
struct Acc {
    count: u64,
    total_ns: u64,
}

impl Acc {
    fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

/// The `kernel=<value>` segment of a case label, if present.
fn kernel_of(label: &str) -> Option<String> {
    label.split('/').find_map(|seg| seg.strip_prefix("kernel=")).map(str::to_string)
}

impl Recorder for PhaseRecorder {
    fn span_open(
        &self,
        id: SpanId,
        parent: Option<SpanId>,
        name: &'static str,
        attrs: &[Attr<'_>],
    ) {
        let t = clock::now_ns();
        let mut s = self.inner.lock().expect("phase recorder poisoned");
        let kernel = if name == SPAN_CASE {
            attrs.iter().find_map(|(k, v)| match v {
                AttrValue::Str(label) if *k == "label" => kernel_of(label),
                _ => None,
            })
        } else if name == SPAN_SIM {
            parent.and_then(|p| s.open.get(&p.0)).and_then(|o| o.kernel.clone())
        } else {
            None
        };
        s.open.insert(id.0, Open { name, t, kernel });
    }

    fn span_close(&self, id: SpanId) {
        let t = clock::now_ns();
        let mut s = self.inner.lock().expect("phase recorder poisoned");
        let Some(open) = s.open.remove(&id.0) else { return };
        let dur = t.saturating_sub(open.t);
        let acc = s.phases.entry(open.name).or_default();
        acc.count += 1;
        acc.total_ns += dur;
        if open.name == SPAN_SIM {
            if let Some(kernel) = open.kernel {
                let acc = s.sim_by_kernel.entry(kernel).or_default();
                acc.count += 1;
                acc.total_ns += dur;
            }
        }
    }

    fn counter(&self, _name: &'static str, _delta: u64) {}
    fn gauge(&self, _name: &'static str, _value: f64) {}
    fn observe(&self, _name: &'static str, _value: f64) {}
    fn event(&self, _name: &'static str, _attrs: &[Attr<'_>]) {}
}

/// Streams `sweep` with a [`PhaseRecorder`] attached and returns its
/// final state.
fn profile(sweep: Sweep) -> PhaseState {
    let recorder = Arc::new(PhaseRecorder::default());
    let session = Session::new().workers(WORKERS).shard_size(SHARD).recorder(recorder.clone());
    let mut stats = OnlineStats::new();
    session
        .run_streaming(sweep.cases(), |_, run| stats.push(run.watts("ac")))
        .expect("sweep validates");
    drop(session);
    let recorder = Arc::into_inner(recorder).expect("session dropped its recorder handle");
    recorder.inner.into_inner().expect("phase recorder poisoned")
}

fn main() {
    // Child mode: `--fleet-shard i/N <path>` runs one slice of the
    // fleet grid to a range checkpoint and exits (see measure_fleet).
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--fleet-shard") {
        let range = ShardRange::parse(&args[pos + 1]).expect("--fleet-shard wants i/N");
        let path = PathBuf::from(&args[pos + 2]);
        run_fleet_shard(&CheckpointSpec { shard: Some(range), ..CheckpointSpec::at(&path) });
        return;
    }

    let mut points = Vec::new();
    for cases in [1_000usize, 10_000] {
        eprintln!("timing {cases}-case grid…");
        points.extend(measure(cases, true));
    }
    eprintln!("timing 100000-case grid (streaming only)…");
    points.extend(measure(100_000, false));

    eprintln!("timing 10000-case torture soak (generation + audit)…");
    points.push(measure_torture(10_000));

    eprintln!("timing {FLEET_CASES}-case fleet split (1 vs {FLEET_PROCESSES} processes + merge)…");
    let fleet = measure_fleet();

    eprintln!("profiling 100000-case streaming run (phase timers)…");
    let phase_cases = 100_000usize;
    let phases = profile(grid(phase_cases));

    let kernel_reps = 200usize;
    eprintln!("profiling per-kernel sim cost ({kernel_reps} cases/kernel)…");
    let kernels = profile(kernel_grid(kernel_reps));

    // Hand-rolled JSON, like the sim's snapshot writer: stable key
    // order, one object per line, no dependencies.
    let mut out = String::from("{\n  \"bench\": \"sweep_throughput\",\n");
    let _ = writeln!(out, "  \"workers\": {WORKERS},");
    let _ = writeln!(out, "  \"shard_size\": {SHARD},");
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let sep = if i + 1 < points.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"cases\": {}, \"style\": \"{}\", \"cases_per_sec\": {:.1}}}{sep}",
            p.cases, p.style, p.cases_per_sec
        );
    }
    out.push_str("  ],\n");
    out.push_str("  \"fleet\": {\n");
    let _ = writeln!(out, "    \"cases\": {FLEET_CASES},");
    let _ = writeln!(out, "    \"processes\": {FLEET_PROCESSES},");
    let _ = writeln!(out, "    \"single_process_s\": {:.2},", fleet.single_process_s);
    let _ = writeln!(out, "    \"fleet_s\": {:.2},", fleet.fleet_s);
    let _ = writeln!(out, "    \"merge_ms\": {:.2}", fleet.merge_ms);
    out.push_str("  },\n");
    let _ = writeln!(out, "  \"phases_cases\": {phase_cases},");
    out.push_str("  \"phases\": [\n");
    for (i, (name, acc)) in phases.phases.iter().enumerate() {
        let sep = if i + 1 < phases.phases.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"span\": \"{}\", \"count\": {}, \"total_ms\": {:.1}, \"mean_ns\": {:.0}}}{sep}",
            name,
            acc.count,
            acc.total_ns as f64 / 1e6,
            acc.mean_ns()
        );
    }
    out.push_str("  ],\n");
    out.push_str("  \"kernels\": [\n");
    for (i, (kernel, acc)) in kernels.sim_by_kernel.iter().enumerate() {
        let sep = if i + 1 < kernels.sim_by_kernel.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"kernel\": \"{}\", \"cases\": {}, \"sim_ns_per_case\": {:.0}}}{sep}",
            kernel,
            acc.count,
            acc.mean_ns()
        );
    }
    out.push_str("  ]\n}\n");

    fs::write("BENCH_10.json", &out).expect("write BENCH_10.json");
    print!("{out}");
    eprintln!("wrote BENCH_10.json");
}
