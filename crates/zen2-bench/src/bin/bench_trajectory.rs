//! Sweep-throughput trajectory point: times the representative
//! `bench_sweep` grids (10^3 and 10^4 cases, streaming and materialized
//! execution) once each and writes `BENCH_7.json` at the workspace root
//! — the first point in the `BENCH_*.json` history the ROADMAP's perf
//! trajectory accumulates PR over PR.
//!
//! ```sh
//! cargo run --release -p zen2-bench --bin bench_trajectory
//! ```
//!
//! Unlike the Criterion benches this is a one-shot measurement: the
//! artifact is a committed coarse trend line (is a PR a 2× regression?),
//! not a statistically sampled comparison. Run it release-mode on an
//! otherwise idle machine.

use std::fmt::Write as _;
use std::fs;
use std::time::Instant;

use zen2_isa::{KernelClass, OperandWeight};
use zen2_sim::stats::OnlineStats;
use zen2_sim::time::MICROSECOND;
use zen2_sim::{Axis, Case, Probe, Session, SimConfig, Sweep, Window};
use zen2_topology::ThreadId;

const WORKERS: usize = 4;
const SHARD: usize = 16;

/// The same representative grid as `benches/bench_sweep.rs`: load
/// levels × repetitions, one instantaneous power read per case.
fn grid(cases: usize) -> Sweep {
    let levels = 8usize;
    let mut base = zen2_sim::Scenario::new();
    base.probe("ac", Probe::AcPowerW, Window::at(20 * MICROSECOND));
    let mut load = Axis::new("busy_threads");
    for n in 1..=levels as u32 {
        load = load.with(format!("{n}"), move |draft| {
            let mut at = draft.scenario.at(0);
            for t in 0..n {
                at = at.workload(ThreadId(t), KernelClass::BusyWait, OperandWeight::HALF);
            }
        });
    }
    Sweep::new("bench", SimConfig::epyc_7502_2s())
        .scenario(base)
        .seed(1)
        .axis(load)
        .axis(Axis::param("rep", (0..cases / levels).map(|r| r as f64)))
}

struct Point {
    cases: usize,
    style: &'static str,
    cases_per_sec: f64,
}

fn measure(cases: usize) -> Vec<Point> {
    let sweep = grid(cases);
    assert_eq!(sweep.len(), cases);
    let session = Session::new().workers(WORKERS).shard_size(SHARD);

    let t = Instant::now();
    let mut stats = OnlineStats::new();
    let n = session
        .run_streaming(sweep.cases(), |_, run| stats.push(run.watts("ac")))
        .expect("sweep validates");
    assert_eq!(n, cases);
    let streaming = cases as f64 / t.elapsed().as_secs_f64();

    let t = Instant::now();
    let materialized: Vec<Case> = sweep.cases().collect();
    let runs = session.run(&materialized).expect("sweep validates");
    assert_eq!(runs.len(), cases);
    let materialized = cases as f64 / t.elapsed().as_secs_f64();

    vec![
        Point { cases, style: "streaming", cases_per_sec: streaming },
        Point { cases, style: "materialized", cases_per_sec: materialized },
    ]
}

fn main() {
    let mut points = Vec::new();
    for cases in [1_000usize, 10_000] {
        eprintln!("timing {cases}-case grid…");
        points.extend(measure(cases));
    }

    // Hand-rolled JSON, like the sim's snapshot writer: stable key
    // order, one object per line, no dependencies.
    let mut out = String::from("{\n  \"bench\": \"sweep_throughput\",\n");
    let _ = writeln!(out, "  \"workers\": {WORKERS},");
    let _ = writeln!(out, "  \"shard_size\": {SHARD},");
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let sep = if i + 1 < points.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"cases\": {}, \"style\": \"{}\", \"cases_per_sec\": {:.1}}}{sep}",
            p.cases, p.style, p.cases_per_sec
        );
    }
    out.push_str("  ]\n}\n");

    fs::write("BENCH_7.json", &out).expect("write BENCH_7.json");
    print!("{out}");
    eprintln!("wrote BENCH_7.json");
}
