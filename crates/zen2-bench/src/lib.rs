//! Benchmark and ablation targets for the zen2-ee workspace.
//!
//! * `benches/bench_experiments.rs` — one Criterion benchmark per paper
//!   table/figure (regeneration cost at reduced scale).
//! * `benches/bench_sim_core.rs` — simulator hot-path micro-benchmarks.
//! * `benches/bench_ablations.rs` — simulation cost with each mechanism
//!   toggled.
//! * `src/bin/ablations.rs` — the *functional* ablation report: what each
//!   paper observation looks like with its mechanism removed.
