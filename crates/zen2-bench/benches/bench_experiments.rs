//! One Criterion benchmark per paper table/figure: measures the cost of
//! regenerating each result with the simulator (reduced sample counts so
//! `cargo bench` completes in minutes; pass `--paper` to the experiment
//! *binaries* for full-scale regeneration).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use zen2_experiments as e;
use zen2_isa::KernelClass;

fn bench_fig01(c: &mut Criterion) {
    c.bench_function("fig01_green500", |b| b.iter(e::fig01_green500::run));
}

fn bench_fig03(c: &mut Criterion) {
    let cfg = e::fig03_transition::Config {
        samples: 200,
        ..e::fig03_transition::Config::fig3(e::Scale::Quick)
    };
    c.bench_function("fig03_transition_200_samples", |b| {
        b.iter(|| e::fig03_transition::run(&cfg, 1))
    });
}

fn bench_tab1(c: &mut Criterion) {
    let cfg = e::tab1_mixed_freq::Config { duration_s: 0.2, sample_interval_s: 0.1 };
    c.bench_function("tab1_mixed_freq_matrix", |b| b.iter(|| e::tab1_mixed_freq::run(&cfg, 2)));
}

fn bench_fig04(c: &mut Criterion) {
    let cfg = e::fig04_l3_latency::Config { repetitions: 2 };
    c.bench_function("fig04_l3_latency_matrix", |b| b.iter(|| e::fig04_l3_latency::run(&cfg, 3)));
}

fn bench_fig05(c: &mut Criterion) {
    c.bench_function("fig05_membw_sweep", |b| b.iter(|| e::fig05_membw::run(4)));
}

fn bench_fig06(c: &mut Criterion) {
    let cfg =
        e::fig06_firestarter::Config { duration_s: 0.4, sample_interval_s: 0.2, boost: false };
    c.bench_function("fig06_firestarter_both_modes", |b| {
        b.iter(|| e::fig06_firestarter::run(&cfg, 5))
    });
}

fn bench_fig07(c: &mut Criterion) {
    let cfg = e::fig07_idle_power::Config {
        duration_s: 0.1,
        thread_counts: vec![1, 64, 128],
        freqs_mhz: vec![2500],
    };
    c.bench_function("fig07_idle_power_staircase", |b| {
        b.iter(|| e::fig07_idle_power::run(&cfg, 6))
    });
}

fn bench_fig08(c: &mut Criterion) {
    let cfg = e::fig08_wakeup::Config { samples: 50 };
    c.bench_function("fig08_wakeup_grid", |b| b.iter(|| e::fig08_wakeup::run(&cfg, 7)));
}

fn bench_fig09(c: &mut Criterion) {
    let cfg = e::fig09_rapl_quality::Config {
        duration_s: 0.2,
        placements: vec![(64, true)],
        freqs_mhz: vec![2500],
    };
    c.bench_function("fig09_rapl_quality_grid", |b| b.iter(|| e::fig09_rapl_quality::run(&cfg, 8)));
}

fn bench_fig10(c: &mut Criterion) {
    let cfg = e::fig10_hamming::Config { blocks: 12, block_s: 0.05 };
    c.bench_function("fig10_hamming_vxorps", |b| {
        b.iter(|| e::fig10_hamming::run(&cfg, 9, KernelClass::VXorps))
    });
}

fn bench_sections(c: &mut Criterion) {
    c.bench_function("sec5a_sibling", |b| b.iter(|| e::sec5a_sibling::run(10)));
    c.bench_function("sec6b_offline", |b| b.iter(|| e::sec6b_offline::run(11)));
    let cfg = e::sec7_update_rate::Config { poll_period_us: 100, duration_ms: 20 };
    c.bench_function("sec7_update_rate", |b| b.iter(|| e::sec7_update_rate::run(&cfg, 12)));
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = experiments;
    config = configured();
    targets = bench_fig01, bench_fig03, bench_tab1, bench_fig04, bench_fig05,
              bench_fig06, bench_fig07, bench_fig08, bench_fig09, bench_fig10,
              bench_sections
}
criterion_main!(experiments);
