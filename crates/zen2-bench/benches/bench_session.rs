//! Batch-execution throughput: `Session` worker pools (with and without
//! boot-prototype reuse) against serial `System::run_scenario` loops over
//! the same case set, in cases/second terms.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use zen2_isa::{KernelClass, OperandWeight};
use zen2_sim::{Case, Probe, Scenario, Session, SimConfig, System, Window};
use zen2_topology::ThreadId;

/// A representative sweep case: wake a few cores, settle, measure AC.
fn sweep_scenario(threads: u32) -> Scenario {
    let mut sc = Scenario::new();
    let mut at = sc.at(0);
    for t in 0..threads {
        at = at.workload(ThreadId(2 * t), KernelClass::Compute, OperandWeight::HALF);
    }
    sc.probe("ac", Probe::AcTrueMeanW, Window::span_secs(0.02, 0.1));
    sc
}

fn batch(n: u64) -> Vec<Case> {
    (0..n)
        .map(|i| {
            Case::new(
                format!("case{i}"),
                SimConfig::epyc_7502_2s(),
                sweep_scenario(1 + (i as u32 % 8)),
                i,
            )
        })
        .collect()
}

const BATCH: u64 = 16;

fn bench_serial(c: &mut Criterion) {
    let cases = batch(BATCH);
    c.bench_function("session_16cases_serial_loop", |b| {
        b.iter(|| {
            let runs: Vec<_> = cases
                .iter()
                .map(|case| {
                    System::new(case.config.clone(), case.seed)
                        .run_scenario(&case.scenario)
                        .expect("valid scenario")
                })
                .collect();
            black_box(runs)
        })
    });
}

fn bench_session_pool(c: &mut Criterion) {
    let cases = batch(BATCH);
    for workers in [1, 4, 8] {
        let session = Session::new().workers(workers);
        c.bench_function(&format!("session_16cases_pool_{workers}workers"), |b| {
            b.iter(|| black_box(session.run(&cases).expect("valid scenarios")))
        });
    }
}

fn bench_boot_reuse(c: &mut Criterion) {
    let cases = batch(BATCH);
    let reuse = Session::new().workers(4);
    let cold = Session::new().workers(4).reuse_boots(false);
    c.bench_function("session_16cases_4workers_boot_reuse", |b| {
        b.iter(|| black_box(reuse.run(&cases).expect("valid scenarios")))
    });
    c.bench_function("session_16cases_4workers_cold_boot", |b| {
        b.iter(|| black_box(cold.run(&cases).expect("valid scenarios")))
    });
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = session;
    config = configured();
    targets = bench_serial, bench_session_pool, bench_boot_reuse
}
criterion_main!(session);
