//! Ablation benchmarks: the same FIRESTARTER/idle scenarios with each
//! design-relevant mechanism toggled, measuring simulation cost. The
//! *functional* effect of each ablation (what the results would look like
//! on a machine without the mechanism) is reported by the `ablations`
//! binary in this crate.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use std::time::Duration;
use zen2_isa::{KernelClass, OperandWeight};
use zen2_sim::{SimConfig, System};
use zen2_topology::ThreadId;

fn loaded(cfg: SimConfig) -> System {
    let mut sys = System::new(cfg, 5);
    for t in 0..128u32 {
        sys.set_workload(ThreadId(t), KernelClass::Firestarter, OperandWeight::HALF);
    }
    sys
}

type ConfigVariant = (&'static str, Box<dyn Fn() -> SimConfig>);

fn bench_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_sim_cost_100ms_firestarter");
    let variants: Vec<ConfigVariant> = vec![
        ("baseline", Box::new(SimConfig::epyc_7502_2s)),
        (
            "no_ccx_coupling",
            Box::new(|| {
                let mut c = SimConfig::epyc_7502_2s();
                c.ccx_coupling = false;
                c
            }),
        ),
        (
            "no_throttle_controller",
            Box::new(|| {
                let mut c = SimConfig::epyc_7502_2s();
                c.controller.enabled = false;
                c
            }),
        ),
        (
            "no_smu_fast_path",
            Box::new(|| {
                let mut c = SimConfig::epyc_7502_2s();
                c.smu.fast_path_enabled = false;
                c
            }),
        ),
        (
            "intel_like_500us_slots",
            Box::new(|| {
                let mut c = SimConfig::epyc_7502_2s();
                c.smu.slot_period_ns = 500_000;
                c
            }),
        ),
        (
            "per_package_c6",
            Box::new(|| {
                let mut c = SimConfig::epyc_7502_2s();
                c.global_package_c6 = false;
                c
            }),
        ),
    ];
    for (name, make) in variants {
        group.bench_function(name, |b| {
            b.iter_batched(
                || loaded(make()),
                |mut sys| {
                    sys.run_for_secs(0.1);
                    black_box(sys.ac_power_w())
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = ablations;
    config = configured();
    targets = bench_variants
}
criterion_main!(ablations);
