//! Sweep-engine scaling: streaming (`Session::run_streaming` over a lazy
//! `Sweep`) against materialized (`Session::run` over the collected case
//! vector) in cases/second terms, plus a one-shot report of peak case
//! residency at grids of 10^3–10^5 cases.
//!
//! The streaming path's selling points are bounded memory (at most
//! `workers × shard_size` cases resident, vs the whole grid) and
//! pipelined delivery; the timed loops check it gives that up without
//! losing throughput.

use criterion::{criterion_group, Criterion};
use std::cell::Cell;
use std::hint::black_box;
use std::time::Duration;
use zen2_isa::{KernelClass, OperandWeight};
use zen2_obs::clock;
use zen2_sim::stats::OnlineStats;
use zen2_sim::time::MICROSECOND;
use zen2_sim::{Axis, Case, Probe, Session, SimConfig, Sweep, Window};
use zen2_topology::ThreadId;

/// A representative grid: load levels × repetitions, one instantaneous
/// power read per case shortly after the load lands.
fn grid(cases: usize) -> Sweep {
    let levels = 8usize;
    let mut base = zen2_sim::Scenario::new();
    base.probe("ac", Probe::AcPowerW, Window::at(20 * MICROSECOND));
    let mut load = Axis::new("busy_threads");
    for n in 1..=levels as u32 {
        load = load.with(format!("{n}"), move |draft| {
            let mut at = draft.scenario.at(0);
            for t in 0..n {
                at = at.workload(ThreadId(t), KernelClass::BusyWait, OperandWeight::HALF);
            }
        });
    }
    Sweep::new("bench", SimConfig::epyc_7502_2s())
        .scenario(base)
        .seed(1)
        .axis(load)
        .axis(Axis::param("rep", (0..cases / levels).map(|r| r as f64)))
}

const WORKERS: usize = 4;
const SHARD: usize = 16;

fn bench_streaming_vs_materialized(c: &mut Criterion) {
    for cases in [1_000usize, 10_000] {
        let sweep = grid(cases);
        assert_eq!(sweep.len(), cases);
        let session = Session::new().workers(WORKERS).shard_size(SHARD);

        c.bench_function(&format!("sweep_{cases}cases_streaming"), |b| {
            b.iter(|| {
                let mut stats = OnlineStats::new();
                let n = session
                    .run_streaming(sweep.cases(), |_, run| stats.push(run.watts("ac")))
                    .expect("sweep validates");
                black_box((n, stats))
            })
        });

        c.bench_function(&format!("sweep_{cases}cases_materialized"), |b| {
            b.iter(|| {
                let materialized: Vec<Case> = sweep.cases().collect();
                let runs = session.run(&materialized).expect("sweep validates");
                let mut stats = OnlineStats::new();
                for run in &runs {
                    stats.push(run.watts("ac"));
                }
                black_box(stats)
            })
        });
    }
}

/// One-shot (not statistically sampled — a 10^5-case grid is too slow to
/// repeat) report: wall time and peak resident cases for both execution
/// styles across three grid magnitudes.
fn residency_report() {
    println!("\n# peak case residency (workers={WORKERS}, shard_size={SHARD})");
    println!(
        "{:>9} {:>12} {:>14} {:>12} {:>14}",
        "cases", "stream [s]", "stream peak", "mat [s]", "mat peak"
    );
    for cases in [1_000usize, 10_000, 100_000] {
        let sweep = grid(cases);
        let session = Session::new().workers(WORKERS).shard_size(SHARD);

        let created = Cell::new(0usize);
        let delivered = Cell::new(0usize);
        let peak = Cell::new(0usize);
        let start = clock::now_ns();
        session
            .run_streaming(
                sweep.cases().inspect(|_| {
                    created.set(created.get() + 1);
                    peak.set(peak.get().max(created.get() - delivered.get()));
                }),
                |_, run| {
                    delivered.set(delivered.get() + 1);
                    black_box(run.watts("ac"));
                },
            )
            .expect("sweep validates");
        let stream_s = clock::secs_since(start);
        let stream_peak = peak.get();
        assert!(stream_peak <= WORKERS * SHARD);

        let start = clock::now_ns();
        let materialized: Vec<Case> = sweep.cases().collect();
        let runs = session.run(&materialized).expect("sweep validates");
        black_box(&runs);
        let mat_s = clock::secs_since(start);

        println!(
            "{:>9} {:>12.2} {:>14} {:>12.2} {:>14}",
            cases,
            stream_s,
            stream_peak,
            mat_s,
            materialized.len()
        );
    }
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = sweep;
    config = configured();
    targets = bench_streaming_vs_materialized
}

fn main() {
    sweep();
    residency_report();
}
