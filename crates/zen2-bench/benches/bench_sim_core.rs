//! Micro-benchmarks of the simulator's hot paths: event-loop throughput,
//! power evaluation, SMU request handling, RAPL accounting, and the
//! analytic memory models.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use std::time::Duration;
use zen2_isa::{KernelClass, OperandWeight};
use zen2_mem::{ClockPlan, DramFreq, DramLatencyModel, IodPstate, StreamBandwidthModel};
use zen2_sim::{SimConfig, System};
use zen2_topology::{CoreId, ThreadId, Topology};

fn busy_system() -> System {
    let mut sys = System::new(SimConfig::epyc_7502_2s(), 99);
    for t in 0..128u32 {
        sys.set_workload(ThreadId(t), KernelClass::Firestarter, OperandWeight::HALF);
    }
    sys.run_for_secs(0.05);
    sys
}

fn bench_run_for(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_run_for_100ms");
    group.bench_function("idle_machine", |b| {
        b.iter_batched(
            || System::new(SimConfig::epyc_7502_2s(), 1),
            |mut sys| {
                sys.run_for_secs(0.1);
                black_box(sys.ac_power_w())
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("fully_loaded_machine", |b| {
        b.iter_batched(
            busy_system,
            |mut sys| {
                sys.run_for_secs(0.1);
                black_box(sys.ac_power_w())
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_boot(c: &mut Criterion) {
    c.bench_function("sim_boot_epyc_7502_2s", |b| {
        b.iter(|| black_box(System::new(SimConfig::epyc_7502_2s(), 7)))
    });
}

fn bench_dvfs_request(c: &mut Criterion) {
    c.bench_function("sim_dvfs_request_and_settle", |b| {
        b.iter_batched(
            || {
                let mut sys = System::new(SimConfig::epyc_7502_2s(), 3);
                sys.set_workload(ThreadId(0), KernelClass::BusyWait, OperandWeight::HALF);
                sys.run_for_secs(0.02);
                sys
            },
            |mut sys| {
                sys.set_thread_pstate_mhz(ThreadId(0), 1500);
                sys.set_thread_pstate_mhz(ThreadId(1), 1500);
                sys.run_for_secs(0.003);
                black_box(sys.effective_core_ghz(CoreId(0)))
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_memory_models(c: &mut Criterion) {
    let lat = DramLatencyModel::zen2();
    let bw = StreamBandwidthModel::zen2();
    c.bench_function("mem_latency_model_full_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for p in IodPstate::SWEEP {
                for d in DramFreq::SWEEP {
                    acc += lat.latency_ns(&ClockPlan::resolve(p, d));
                }
            }
            black_box(acc)
        })
    });
    c.bench_function("mem_bandwidth_model_full_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for p in IodPstate::SWEEP {
                for d in DramFreq::SWEEP {
                    let plan = ClockPlan::resolve(p, d);
                    for n in 1..=4 {
                        acc += bw.bandwidth_gbs(&plan, n);
                    }
                }
            }
            black_box(acc)
        })
    });
}

fn bench_topology(c: &mut Criterion) {
    let topo = Topology::epyc_7502_2s();
    c.bench_function("topology_full_thread_walk", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for t in topo.all_threads() {
                acc = acc
                    .wrapping_add(topo.core_of(t).0)
                    .wrapping_add(topo.ccx_of_core(topo.core_of(t)).0)
                    .wrapping_add(topo.socket_of_thread(t).0);
            }
            black_box(acc)
        })
    });
}

fn bench_rapl_read(c: &mut Criterion) {
    c.bench_function("rapl_measure_through_msrs", |b| {
        b.iter_batched(
            busy_system,
            |mut sys| black_box(sys.measure_rapl_w(0.05)),
            BatchSize::SmallInput,
        )
    });
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = sim_core;
    config = configured();
    targets = bench_run_for, bench_boot, bench_dvfs_request, bench_memory_models,
              bench_topology, bench_rapl_read
}
criterion_main!(sim_core);
