//! §VI-B — influence of offlined hardware threads on idle states.
//!
//! "Even though C2 states are active and used by the active hardware
//! threads, system power consumption is increased to the C1 level as long
//! as the disabled hardware threads are offline. Only an explicit enabling
//! of the disabled threads will fix this behavior." The paper therefore
//! *strongly discourages* disabling hardware threads on Rome.

use crate::report::{compare, Table};
use serde::Serialize;
use zen2_sim::{SimConfig, System};
use zen2_topology::{LogicalCpu, ThreadId};

/// Full experiment output.
#[derive(Debug, Clone, Serialize)]
pub struct Sec6bResult {
    /// Idle power with every thread online and in C2, W.
    pub baseline_w: f64,
    /// Idle power after offlining the second hardware threads, W.
    pub offline_w: f64,
    /// Idle power after re-onlining them, W.
    pub reonline_w: f64,
    /// The same offline configuration under a kernel that parks offlined
    /// threads in the deepest state (ablation), W.
    pub clean_parking_w: f64,
}

/// Runs the offline/re-online sequence.
pub fn run(seed: u64) -> Sec6bResult {
    let mut sys = System::new(SimConfig::epyc_7502_2s(), seed);
    let numbering = sys.numbering().clone();
    let second_threads: Vec<ThreadId> =
        (64..128).map(|cpu| numbering.thread_of(LogicalCpu(cpu))).collect();

    let measure = |sys: &mut System| {
        sys.run_for_secs(0.05);
        let t0 = sys.now_ns();
        sys.run_for_secs(0.4);
        sys.trace_mean_w(t0, sys.now_ns())
    };

    let baseline_w = measure(&mut sys);
    for &t in &second_threads {
        sys.set_online(t, false);
    }
    let offline_w = measure(&mut sys);
    for &t in &second_threads {
        sys.set_online(t, true);
    }
    let reonline_w = measure(&mut sys);

    let mut clean_cfg = SimConfig::epyc_7502_2s();
    clean_cfg.os.offline_parks_in_c1 = false;
    let mut clean = System::new(clean_cfg, seed ^ 1);
    for &t in &second_threads {
        clean.set_online(t, false);
    }
    let clean_parking_w = measure(&mut clean);

    Sec6bResult { baseline_w, offline_w, reonline_w, clean_parking_w }
}

/// Renders the summary.
pub fn render(r: &Sec6bResult) -> String {
    let mut t = Table::new(
        "SS VI-B — offlined hardware threads block package C6",
        &["configuration", "paper / measured [W]"],
    );
    t.row(&["all online, idle (C2)".into(), compare(99.1, r.baseline_w, "")]);
    t.row(&["second threads offline".into(), compare(180.3, r.offline_w, "")]);
    t.row(&["after re-onlining".into(), compare(99.1, r.reonline_w, "")]);
    t.row(&["(ablation) clean offline parking".into(), format!("- / {:.1}", r.clean_parking_w)]);
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offline_threads_raise_idle_power_to_c1_level() {
        let r = run(111);
        assert!((r.baseline_w - 99.1).abs() < 1.5, "baseline {}", r.baseline_w);
        // "System power consumption is increased to the C1 level": the
        // package wake step plus the per-core clock-gate residual of all
        // 64 cores held out of C2 (~180.3 + 63 x 0.09 W).
        assert!((175.0..=190.0).contains(&r.offline_w), "offline {}", r.offline_w);
        assert!(r.offline_w > r.baseline_w + 75.0);
    }

    #[test]
    fn reonlining_fixes_it() {
        let r = run(112);
        assert!((r.reonline_w - r.baseline_w).abs() < 1.0, "re-online {}", r.reonline_w);
    }

    #[test]
    fn clean_parking_kernel_would_not_show_the_anomaly() {
        let r = run(113);
        assert!((r.clean_parking_w - r.baseline_w).abs() < 1.5, "clean {}", r.clean_parking_w);
    }
}
