//! §VI-B — influence of offlined hardware threads on idle states.
//!
//! "Even though C2 states are active and used by the active hardware
//! threads, system power consumption is increased to the C1 level as long
//! as the disabled hardware threads are offline. Only an explicit enabling
//! of the disabled threads will fix this behavior." The paper therefore
//! *strongly discourages* disabling hardware threads on Rome.
//!
//! The offline → re-online sequence is a single declarative [`Scenario`]
//! with three observation windows; the clean-parking ablation is a second
//! case in the same [`Session`] batch.

use crate::report::{compare, Table};
use serde::Serialize;
use zen2_sim::{Case, Probe, Scenario, Session, SimConfig, Window};
use zen2_topology::{CpuNumbering, LogicalCpu, ThreadId};

/// Full experiment output.
#[derive(Debug, Clone, Serialize)]
pub struct Sec6bResult {
    /// Idle power with every thread online and in C2, W.
    pub baseline_w: f64,
    /// Idle power after offlining the second hardware threads, W.
    pub offline_w: f64,
    /// Idle power after re-onlining them, W.
    pub reonline_w: f64,
    /// The same offline configuration under a kernel that parks offlined
    /// threads in the deepest state (ablation), W.
    pub clean_parking_w: f64,
}

/// Settling time before each measurement window, seconds.
const SETTLE_S: f64 = 0.05;
/// Measurement window length, seconds.
const MEASURE_S: f64 = 0.4;

/// The second hardware threads in logical-CPU order (cpus 64..128).
fn second_threads(numbering: &CpuNumbering) -> Vec<ThreadId> {
    (64..128).map(|cpu| numbering.thread_of(LogicalCpu(cpu))).collect()
}

/// Builds the offline → re-online sequence as one scenario: three
/// settle-then-measure phases around the two hotplug transitions.
fn sequence_scenario(threads: &[ThreadId]) -> Scenario {
    let phase = MEASURE_S + SETTLE_S;
    let mut sc = Scenario::new();
    sc.probe("baseline", Probe::AcTrueMeanW, Window::span_secs(SETTLE_S, phase));

    let mut at = sc.at_secs(phase);
    for &t in threads {
        at = at.online(t, false);
    }
    sc.probe("offline", Probe::AcTrueMeanW, Window::span_secs(phase + SETTLE_S, 2.0 * phase));

    let mut at = sc.at_secs(2.0 * phase);
    for &t in threads {
        at = at.online(t, true);
    }
    sc.probe(
        "reonline",
        Probe::AcTrueMeanW,
        Window::span_secs(2.0 * phase + SETTLE_S, 3.0 * phase),
    );
    sc
}

/// Builds the clean-parking ablation scenario: offline at t = 0, measure.
fn clean_scenario(threads: &[ThreadId]) -> Scenario {
    let mut sc = Scenario::new();
    let mut at = sc.at(0);
    for &t in threads {
        at = at.online(t, false);
    }
    sc.probe("clean", Probe::AcTrueMeanW, Window::span_secs(SETTLE_S, SETTLE_S + MEASURE_S));
    sc
}

/// Runs the offline/re-online sequence plus the clean-parking ablation.
pub fn run(seed: u64) -> Sec6bResult {
    let cfg = SimConfig::epyc_7502_2s();
    let mut clean_cfg = SimConfig::epyc_7502_2s();
    clean_cfg.os.offline_parks_in_c1 = false;
    let threads = second_threads(&CpuNumbering::linux_default(&cfg.topology));

    let cases = vec![
        Case::new("sequence", cfg, sequence_scenario(&threads), seed),
        Case::new("clean-parking", clean_cfg, clean_scenario(&threads), seed ^ 1),
    ];
    let runs = Session::new().run(&cases).expect("sec6b scenarios validate");

    Sec6bResult {
        baseline_w: runs[0].watts("baseline"),
        offline_w: runs[0].watts("offline"),
        reonline_w: runs[0].watts("reonline"),
        clean_parking_w: runs[1].watts("clean"),
    }
}

/// Renders the summary.
pub fn render(r: &Sec6bResult) -> String {
    tables(r).iter().map(Table::render).collect()
}

/// The summary as a [`Table`] (for text, CSV, or JSON output).
pub fn tables(r: &Sec6bResult) -> Vec<Table> {
    let mut t = Table::new(
        "SS VI-B — offlined hardware threads block package C6",
        &["configuration", "paper / measured [W]"],
    );
    t.row(&["all online, idle (C2)".into(), compare(99.1, r.baseline_w, "")]);
    t.row(&["second threads offline".into(), compare(180.3, r.offline_w, "")]);
    t.row(&["after re-onlining".into(), compare(99.1, r.reonline_w, "")]);
    t.row(&["(ablation) clean offline parking".into(), format!("- / {:.1}", r.clean_parking_w)]);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offline_threads_raise_idle_power_to_c1_level() {
        let r = run(111);
        assert!((r.baseline_w - 99.1).abs() < 1.5, "baseline {}", r.baseline_w);
        // "System power consumption is increased to the C1 level": the
        // package wake step plus the per-core clock-gate residual of all
        // 64 cores held out of C2 (~180.3 + 63 x 0.09 W).
        assert!((175.0..=190.0).contains(&r.offline_w), "offline {}", r.offline_w);
        assert!(r.offline_w > r.baseline_w + 75.0);
    }

    #[test]
    fn reonlining_fixes_it() {
        let r = run(112);
        assert!((r.reonline_w - r.baseline_w).abs() < 1.0, "re-online {}", r.reonline_w);
    }

    #[test]
    fn clean_parking_kernel_would_not_show_the_anomaly() {
        let r = run(113);
        assert!((r.clean_parking_w - r.baseline_w).abs() < 1.5, "clean {}", r.clean_parking_w);
    }
}
