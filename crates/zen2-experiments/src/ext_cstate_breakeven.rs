//! Extension: break-even idle residencies for an *informed* C-state
//! governor.
//!
//! Section VI of the paper notes that the ACPI tables on the test system
//! report `UINT_MAX` power for C0 and `0` for the idle states, so they
//! "cannot contribute towards an informed selection of C-states" — and
//! the reported C2 exit latency (400 µs) is 16–20× the measured one.
//!
//! With the calibrated models this repository *can* make the informed
//! decision: this experiment computes, per frequency, the minimum idle
//! residency above which entering C2 beats staying in C1 (the classic
//! menu-governor break-even), using the measured exit latencies instead
//! of the ACPI fiction — plus the system-level PC6 consideration that
//! dwarfs the per-core numbers.

use crate::report::Table;
use serde::Serialize;
use zen2_sim::config::CstateParams;
use zen2_sim::cstate::ThreadState;
use zen2_sim::wakeup;
use zen2_sim::{SimConfig, System};
use zen2_topology::ThreadId;

/// Break-even figures for one core frequency.
#[derive(Debug, Clone, Serialize)]
pub struct BreakEven {
    /// Core frequency, MHz.
    pub freq_mhz: u32,
    /// Measured C1 exit latency, µs.
    pub c1_exit_us: f64,
    /// Measured C2 exit latency, µs.
    pub c2_exit_us: f64,
    /// Break-even idle residency for C2 over C1, µs (per-core view).
    pub breakeven_us: f64,
    /// The same computed from the ACPI-reported 400 µs latency — the
    /// decision a governor trusting the firmware tables would make.
    pub acpi_breakeven_us: f64,
}

/// Full experiment output.
#[derive(Debug, Clone, Serialize)]
pub struct BreakEvenResult {
    /// Per-frequency break-even figures.
    pub rows: Vec<BreakEven>,
    /// Power saved by the last thread entering C2 system-wide (the PC6
    /// step), W — the term that dominates every per-core consideration.
    pub pc6_step_w: f64,
}

/// Computes the break-even residencies from the calibrated models.
pub fn run(seed: u64) -> BreakEvenResult {
    let cfg = SimConfig::epyc_7502_2s();
    let cstate = CstateParams::default();
    let c1_core_w = cfg.power.core.c1_power_w();
    let c2_core_w = cfg.power.core.c2_power_w();
    let delta_w = c1_core_w - c2_core_w;

    let mut rows = Vec::new();
    for &freq_mhz in &[1500u32, 2200, 2500] {
        let ghz = freq_mhz as f64 / 1000.0;
        let c1_exit = wakeup::base_latency_ns(&cstate, ThreadState::C1, ghz, false);
        let c2_exit = wakeup::base_latency_ns(&cstate, ThreadState::C2, ghz, false);
        // Energy overhead of choosing C2: the extra exit time runs the
        // core at active power instead of doing useful (or idle) work.
        // Approximate the wake path at the pause-loop power level.
        let wake_power_w = 0.31 * ghz / 2.5; // calibrated pause power, scaled
        let extra_exit_s = (c2_exit - c1_exit) / 1e9;
        let extra_energy_j = wake_power_w * extra_exit_s;
        let breakeven_s = extra_energy_j / delta_w;
        // The ACPI-table version uses the reported 400 us exit latency.
        let acpi_extra_s =
            (cstate.acpi_reported_c2_ns as f64 - cstate.acpi_reported_c1_ns as f64) / 1e9;
        let acpi_breakeven_s = wake_power_w * acpi_extra_s / delta_w;
        rows.push(BreakEven {
            freq_mhz,
            c1_exit_us: c1_exit / 1000.0,
            c2_exit_us: c2_exit / 1000.0,
            breakeven_us: breakeven_s * 1e6,
            acpi_breakeven_us: acpi_breakeven_s * 1e6,
        });
    }

    // The PC6 step, measured end to end on the simulator: power with one
    // C1 thread minus power with everything in C2.
    let mut sys = System::new(cfg, seed);
    sys.run_for_secs(0.1);
    let t0 = sys.now_ns();
    sys.run_for_secs(0.2);
    let floor = sys.trace_mean_w(t0, sys.now_ns());
    sys.set_cstate_enabled(ThreadId(0), 2, false);
    sys.run_for_secs(0.05);
    let t1 = sys.now_ns();
    sys.run_for_secs(0.2);
    let one_c1 = sys.trace_mean_w(t1, sys.now_ns());

    BreakEvenResult { rows, pc6_step_w: one_c1 - floor }
}

/// Renders the governor guidance table.
pub fn render(r: &BreakEvenResult) -> String {
    let mut out = tables(r)[0].render();
    out.push_str(&format!(
        "system view: the *last* thread entering C2 additionally unlocks PC6 worth {:.1} W —\n\
         three orders of magnitude above any per-core consideration, which is why the paper's\n\
         first recommendation is to never block the deepest state.\n",
        r.pc6_step_w
    ));
    out
}

/// The guidance as a [`Table`] (for text, CSV, or JSON output).
pub fn tables(r: &BreakEvenResult) -> Vec<Table> {
    let mut t = Table::new(
        "Extension — informed C-state break-even (what the ACPI tables cannot tell the governor)",
        &[
            "freq [GHz]",
            "C1 exit [us]",
            "C2 exit [us]",
            "break-even [us]",
            "ACPI-table break-even [us]",
        ],
    );
    for row in &r.rows {
        t.row(&[
            format!("{:.1}", row.freq_mhz as f64 / 1000.0),
            format!("{:.2}", row.c1_exit_us),
            format!("{:.2}", row.c2_exit_us),
            format!("{:.0}", row.breakeven_us),
            format!("{:.0}", row.acpi_breakeven_us),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_core_breakeven_is_tens_of_microseconds() {
        let r = run(141);
        for row in &r.rows {
            assert!(
                row.breakeven_us > 10.0 && row.breakeven_us < 500.0,
                "@{} MHz: {} us",
                row.freq_mhz,
                row.breakeven_us
            );
            // Trusting the ACPI 400 us figure inflates the break-even by
            // more than an order of magnitude.
            assert!(row.acpi_breakeven_us > 8.0 * row.breakeven_us);
        }
    }

    #[test]
    fn pc6_step_dominates_everything() {
        let r = run(142);
        assert!((r.pc6_step_w - 81.2).abs() < 3.0, "PC6 step {:.1} W", r.pc6_step_w);
    }

    #[test]
    fn breakeven_rises_with_frequency() {
        // Faster cores exit C2 sooner, but the wake path burns power at
        // f*V^2 — the energy term wins, so high-frequency cores need
        // longer idle periods to amortize C2.
        let r = run(143);
        assert!(r.rows[0].breakeven_us < r.rows[2].breakeven_us);
    }
}
