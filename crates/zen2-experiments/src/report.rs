//! Text-table rendering and paper-vs-measured comparison helpers.

use std::fmt::Write as _;

/// A simple aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    /// Panics if the row width disagrees with the header.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch in '{}'", self.title);
        self.rows.push(cells.to_vec());
    }

    /// Appends one row from displayable items.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) {
        self.row(&cells.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(s, " {cell:>w$} |", w = w);
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{}|", "-".repeat(w + 2));
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Writes the table as CSV (headers + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ = writeln!(out, "{}", self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        out
    }
}

/// Formats a paper-vs-measured pair with the relative deviation.
pub fn compare(paper: f64, measured: f64, unit: &str) -> String {
    let err = if paper.abs() > 1e-12 { (measured - paper) / paper * 100.0 } else { 0.0 };
    format!("{paper:.1}{unit} / {measured:.1}{unit} ({err:+.1}%)")
}

/// Formats a measured value with more precision.
pub fn compare_precise(paper: f64, measured: f64, unit: &str) -> String {
    let err = if paper.abs() > 1e-12 { (measured - paper) / paper * 100.0 } else { 0.0 };
    format!("{paper:.3}{unit} / {measured:.3}{unit} ({err:+.1}%)")
}

/// Relative deviation |measured−paper|/paper.
pub fn rel_err(paper: f64, measured: f64) -> f64 {
    assert!(paper.abs() > 1e-12, "relative error against zero reference");
    ((measured - paper) / paper).abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "value"]);
        t.row(&["x".into(), "1.5".into()]);
        t.row(&["longer".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("| longer |"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("demo", &["a"]);
        t.row(&["x,y".into()]);
        assert!(t.to_csv().contains("\"x,y\""));
    }

    #[test]
    fn comparison_formatting() {
        let s = compare(92.0, 91.5, " ns");
        assert!(s.contains("92.0 ns"));
        assert!(s.contains("-0.5%"));
        assert!((rel_err(100.0, 95.0) - 0.05).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["only-one".into()]);
    }
}
