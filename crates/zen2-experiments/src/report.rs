//! Text-table rendering and paper-vs-measured comparison helpers.

use std::fmt::Write as _;

/// A simple aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    /// Panics if the row width disagrees with the header.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch in '{}'", self.title);
        self.rows.push(cells.to_vec());
    }

    /// Appends one row from displayable items.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) {
        self.row(&cells.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(s, " {cell:>w$} |", w = w);
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{}|", "-".repeat(w + 2));
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Writes the table as CSV (headers + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ =
            writeln!(out, "{}", self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        out
    }

    /// Writes the table as JSON: `{"title", "headers", "rows"}` with
    /// rows as objects keyed by header, so large-grid sweep summaries
    /// are machine-readable without a CSV parser.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(out, "\"title\":{},\"headers\":[", json_escape(&self.title));
        for (i, h) in self.headers.iter().enumerate() {
            let _ = write!(out, "{}{}", if i > 0 { "," } else { "" }, json_escape(h));
        }
        out.push_str("],\"rows\":[");
        for (r, row) in self.rows.iter().enumerate() {
            if r > 0 {
                out.push(',');
            }
            out.push('{');
            for (c, (header, cell)) in self.headers.iter().zip(row).enumerate() {
                let _ = write!(
                    out,
                    "{}{}:{}",
                    if c > 0 { "," } else { "" },
                    json_escape(header),
                    json_escape(cell)
                );
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Renders a set of tables as one JSON array document — the `--json`
/// output shape shared by every experiment binary.
pub fn tables_to_json(tables: &[Table]) -> String {
    let mut out = String::from("[");
    for (i, t) in tables.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&t.to_json());
    }
    out.push(']');
    out
}

/// Prints an experiment's report: the JSON array of `tables` when
/// `--json` was passed on the command line, the rendered `text`
/// otherwise. Every experiment binary routes its output through this,
/// so the `--json` contract is uniform across the tree.
pub fn emit(text: impl FnOnce() -> String, tables: impl FnOnce() -> Vec<Table>) {
    if std::env::args().any(|a| a == "--json") {
        println!("{}", tables_to_json(&tables()));
    } else {
        print!("{}", text());
    }
}

/// Renders a string as a JSON string literal (quotes included).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a paper-vs-measured pair with the relative deviation.
pub fn compare(paper: f64, measured: f64, unit: &str) -> String {
    let err = if paper.abs() > 1e-12 { (measured - paper) / paper * 100.0 } else { 0.0 };
    format!("{paper:.1}{unit} / {measured:.1}{unit} ({err:+.1}%)")
}

/// Formats a measured value with more precision.
pub fn compare_precise(paper: f64, measured: f64, unit: &str) -> String {
    let err = if paper.abs() > 1e-12 { (measured - paper) / paper * 100.0 } else { 0.0 };
    format!("{paper:.3}{unit} / {measured:.3}{unit} ({err:+.1}%)")
}

/// Relative deviation |measured−paper|/paper.
pub fn rel_err(paper: f64, measured: f64) -> f64 {
    assert!(paper.abs() > 1e-12, "relative error against zero reference");
    ((measured - paper) / paper).abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "value"]);
        t.row(&["x".into(), "1.5".into()]);
        t.row(&["longer".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("| longer |"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn json_rows_are_keyed_by_header() {
        let mut t = Table::new("demo", &["sku", "value"]);
        t.row(&["EPYC 7502".into(), "1.5".into()]);
        t.row(&["quote\"comma,".into(), "2".into()]);
        assert_eq!(
            t.to_json(),
            "{\"title\":\"demo\",\"headers\":[\"sku\",\"value\"],\"rows\":[\
             {\"sku\":\"EPYC 7502\",\"value\":\"1.5\"},\
             {\"sku\":\"quote\\\"comma,\",\"value\":\"2\"}]}"
        );
    }

    #[test]
    fn json_escapes_control_characters() {
        let mut t = Table::new("t\n\t", &["a"]);
        t.row(&["\u{1}".into()]);
        let json = t.to_json();
        assert!(json.contains("\"t\\n\\t\""));
        assert!(json.contains("\\u0001"));
    }

    #[test]
    fn tables_concatenate_into_a_json_array() {
        let mut a = Table::new("a", &["x"]);
        a.row(&["1".into()]);
        let b = Table::new("b", &["y"]);
        assert_eq!(
            tables_to_json(&[a.clone(), b]),
            format!("[{},{}]", a.to_json(), Table::new("b", &["y"]).to_json())
        );
        assert_eq!(tables_to_json(&[]), "[]");
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("demo", &["a"]);
        t.row(&["x,y".into()]);
        assert!(t.to_csv().contains("\"x,y\""));
    }

    #[test]
    fn comparison_formatting() {
        let s = compare(92.0, 91.5, " ns");
        assert!(s.contains("92.0 ns"));
        assert!(s.contains("-0.5%"));
        assert!((rel_err(100.0, 95.0) - 0.05).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["only-one".into()]);
    }
}
