//! Multi-process fleet coordinator for the wide-grid sweeps.
//!
//! `zen2-fleet --bin fig09 -n 3 --checkpoint /tmp/f9` partitions the
//! target bin's grid into `N` contiguous `--shard-range i/N` slices,
//! spawns one OS process per slice, watches them (heartbeats are
//! relayed live from each worker's stderr, failed or incomplete shards
//! are retried with `--resume` under bounded backoff), merges the range
//! checkpoints with `Checkpoint::merge`, and finally re-emits the
//! report by resuming the merged checkpoint in a fresh worker process —
//! so the fleet's stdout is byte-identical to a single-process run of
//! the same bin (see `docs/SWEEPS.md` § Fleet runs).
//!
//! Supported targets are the seven checkpoint-carrying bins: `fig06`,
//! `fig07`, `fig09`, `fig10`, `tab1`, `ext_manycore`, and `all` (whose
//! shard mode folds only the wide grids; the narrow experiments re-run
//! deterministically in the re-emit pass). `--drill-kill <i>` aborts
//! shard `i`'s first attempt after one checkpoint save — a fault drill
//! for the retry path; it needs a target whose bin forwards
//! `--halt-after` (the single-grid bins; `fig10` and `all` drop it).
use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitStatus, Stdio};
use std::thread::JoinHandle;
use zen2_sim::{Checkpoint, ShardRange};

const USAGE: &str = "usage: zen2-fleet --bin <fig06|fig07|fig09|fig10|tab1|ext_manycore|all> \
-n <shards> --checkpoint <prefix> [--paper] [--json] [--workers N] [--shard-size N] \
[--progress] [--retries K] [--drill-kill <shard>]";

/// Checkpoint-file suffixes each target bin appends to its
/// `--checkpoint` argument: one file per wide grid it runs.
fn suffixes(bin: &str) -> Option<&'static [&'static str]> {
    match bin {
        "fig06" | "fig07" | "fig09" | "tab1" | "ext_manycore" => Some(&[""]),
        "fig10" => Some(&["-vxorps", "-shr"]),
        "all" => Some(&[
            "-tab1",
            "-fig06",
            "-fig07",
            "-fig09",
            "-fig10-vxorps",
            "-fig10-shr",
            "-ext_manycore",
        ]),
        _ => None,
    }
}

#[derive(Debug, PartialEq)]
struct FleetCli {
    bin: String,
    shards: usize,
    checkpoint: PathBuf,
    paper: bool,
    json: bool,
    workers: Option<String>,
    shard_size: Option<String>,
    progress: bool,
    retries: usize,
    drill_kill: Option<usize>,
}

impl FleetCli {
    fn parse(args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut bin = None;
        let mut shards = None;
        let mut checkpoint = None;
        let mut paper = false;
        let mut json = false;
        let mut workers = None;
        let mut shard_size = None;
        let mut progress = false;
        let mut retries = 2usize;
        let mut drill_kill = None;
        let mut args = args;
        while let Some(arg) = args.next() {
            let mut value = |flag: &str| -> Result<String, String> {
                args.next().ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
            };
            match arg.as_str() {
                "--bin" => bin = Some(value("--bin")?),
                "-n" | "--shards" => {
                    let n = value("-n")?;
                    let n: usize =
                        n.parse().map_err(|_| format!("-n wants a shard count, got {n:?}"))?;
                    if n == 0 {
                        return Err("-n wants at least one shard".into());
                    }
                    shards = Some(n);
                }
                "--checkpoint" => checkpoint = Some(PathBuf::from(value("--checkpoint")?)),
                "--paper" => paper = true,
                "--json" => json = true,
                "--workers" => workers = Some(value("--workers")?),
                "--shard-size" => shard_size = Some(value("--shard-size")?),
                "--progress" => progress = true,
                "--retries" => {
                    let k = value("--retries")?;
                    retries =
                        k.parse().map_err(|_| format!("--retries wants a count, got {k:?}"))?;
                }
                "--drill-kill" => {
                    let i = value("--drill-kill")?;
                    drill_kill = Some(
                        i.parse()
                            .map_err(|_| format!("--drill-kill wants a shard index, got {i:?}"))?,
                    );
                }
                other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
            }
        }
        let bin = bin.ok_or_else(|| format!("--bin is required\n{USAGE}"))?;
        if suffixes(&bin).is_none() {
            return Err(format!(
                "--bin {bin:?} has no wide grid to shard; pick one of \
                 fig06, fig07, fig09, fig10, tab1, ext_manycore, all"
            ));
        }
        let shards = shards.ok_or_else(|| format!("-n <shards> is required\n{USAGE}"))?;
        let checkpoint =
            checkpoint.ok_or_else(|| format!("--checkpoint <prefix> is required\n{USAGE}"))?;
        if let Some(kill) = drill_kill {
            if kill >= shards {
                return Err(format!("--drill-kill {kill} is outside the {shards}-shard fleet"));
            }
        }
        Ok(FleetCli {
            bin,
            shards,
            checkpoint,
            paper,
            json,
            workers,
            shard_size,
            progress,
            retries,
            drill_kill,
        })
    }

    /// `<prefix>.shard<i>` — the checkpoint base a shard worker writes.
    fn shard_base(&self, index: usize) -> PathBuf {
        path_with_suffix(&self.checkpoint, &format!(".shard{index}"))
    }

    /// `<prefix>.merged` — the checkpoint base the merged files live at.
    fn merged_base(&self) -> PathBuf {
        path_with_suffix(&self.checkpoint, ".merged")
    }
}

/// Appends `suffix` to the final path component (the bins do the same
/// when they add their per-grid suffixes).
fn path_with_suffix(base: &Path, suffix: &str) -> PathBuf {
    let mut name = base.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(suffix);
    base.with_file_name(name)
}

/// Locates the target bin next to the running coordinator — both live
/// in the same cargo target directory.
fn worker_exe(bin: &str) -> Result<PathBuf, String> {
    let me = std::env::current_exe().map_err(|e| format!("cannot locate zen2-fleet: {e}"))?;
    let dir = me.parent().ok_or("zen2-fleet has no parent directory")?;
    let exe = dir.join(bin);
    if !exe.exists() {
        return Err(format!("worker binary {} not found; build it first", exe.display()));
    }
    Ok(exe)
}

/// One worker process plus the thread relaying its stderr heartbeats.
struct Worker {
    shard: usize,
    child: Child,
    relay: JoinHandle<()>,
}

fn spawn_shard(cli: &FleetCli, exe: &Path, shard: usize, attempt: usize) -> Result<Worker, String> {
    let mut cmd = Command::new(exe);
    if cli.paper {
        cmd.arg("--paper");
    }
    cmd.arg("--checkpoint").arg(cli.shard_base(shard));
    cmd.arg("--shard-range").arg(format!("{shard}/{}", cli.shards));
    if attempt > 0 {
        cmd.arg("--resume");
    }
    if let Some(workers) = &cli.workers {
        cmd.args(["--workers", workers]);
    }
    if let Some(shard_size) = &cli.shard_size {
        cmd.args(["--shard-size", shard_size]);
    }
    if cli.progress {
        cmd.arg("--progress");
    }
    // The fault drill: the victim's first attempt halts after one
    // checkpoint save, leaving a partial range file behind — exactly
    // what a mid-shard crash leaves. The retry must finish it.
    if cli.drill_kill == Some(shard) && attempt == 0 {
        cmd.args(["--halt-after", "1"]);
    }
    // A shard's stdout is not the fleet's output (the merged re-emit
    // is); its stderr is the per-shard heartbeat channel.
    cmd.stdout(Stdio::null()).stderr(Stdio::piped());
    let mut child =
        cmd.spawn().map_err(|e| format!("cannot spawn {} shard {shard}: {e}", cli.bin))?;
    let stderr = child.stderr.take().expect("stderr was piped");
    let tag = format!("[{} {shard}/{}] ", cli.bin, cli.shards);
    // zen2-lint: allow(no-thread-escape) — joined at reap; the relay only forwards heartbeats
    let relay = std::thread::spawn(move || {
        for line in std::io::BufReader::new(stderr).lines() {
            let Ok(line) = line else { break };
            eprintln!("{tag}{line}");
        }
    });
    Ok(Worker { shard, child, relay })
}

/// Did shard `i` leave every one of its range checkpoints covering its
/// full slice? A worker that exits 0 without writing a file ran an
/// empty slice (possible on grids smaller than the fleet) — the merge
/// pass is the final authority on total coverage.
fn shard_is_complete(cli: &FleetCli, shard: usize) -> Result<bool, String> {
    let range = ShardRange { index: shard, of: cli.shards };
    for suffix in suffixes(&cli.bin).expect("bin was validated") {
        let path = path_with_suffix(&cli.shard_base(shard), suffix);
        if !path.exists() {
            continue;
        }
        let ck = Checkpoint::load(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        if ck.covered() != range.bounds(ck.total()) {
            return Ok(false);
        }
    }
    Ok(true)
}

fn reap(worker: Worker) -> Result<(usize, ExitStatus), String> {
    let Worker { shard, mut child, relay } = worker;
    let status = child.wait().map_err(|e| format!("waiting on shard {shard}: {e}"))?;
    let _ = relay.join();
    Ok((shard, status))
}

/// Runs all shards to completion, retrying failed or incomplete ones
/// with `--resume` under doubling (bounded) backoff.
fn run_fleet(cli: &FleetCli, exe: &Path) -> Result<(), String> {
    let mut pending: Vec<usize> = (0..cli.shards).collect();
    let mut attempt = vec![0usize; cli.shards];
    while !pending.is_empty() {
        let mut workers = Vec::new();
        for &shard in &pending {
            if attempt[shard] > 0 {
                let backoff = 100u64 << (attempt[shard] - 1).min(4);
                eprintln!(
                    "zen2-fleet: retrying shard {shard}/{} (attempt {}, backoff {backoff} ms)",
                    cli.shards,
                    attempt[shard] + 1
                );
                std::thread::sleep(std::time::Duration::from_millis(backoff));
            }
            workers.push(spawn_shard(cli, exe, shard, attempt[shard])?);
        }
        let mut still_pending = Vec::new();
        for worker in workers {
            let (shard, status) = reap(worker)?;
            let complete = status.success() && shard_is_complete(cli, shard)?;
            if complete {
                continue;
            }
            attempt[shard] += 1;
            if attempt[shard] > cli.retries {
                return Err(format!(
                    "shard {shard}/{} still incomplete after {} attempts (last exit: {status})",
                    cli.shards, attempt[shard]
                ));
            }
            still_pending.push(shard);
        }
        pending = still_pending;
    }
    Ok(())
}

/// Merges the per-shard range checkpoints into `<prefix>.merged…`, one
/// complete checkpoint per wide grid the target bin runs.
fn merge_shards(cli: &FleetCli) -> Result<(), String> {
    let started = zen2_obs::clock::now_ns();
    let mut files = 0usize;
    for suffix in suffixes(&cli.bin).expect("bin was validated") {
        let mut merged: Option<Checkpoint> = None;
        for shard in 0..cli.shards {
            let path = path_with_suffix(&cli.shard_base(shard), suffix);
            if !path.exists() {
                continue; // empty slice of a small grid
            }
            let ck = Checkpoint::load(&path).map_err(|e| format!("{}: {e}", path.display()))?;
            files += 1;
            match &mut merged {
                None => merged = Some(ck),
                Some(into) => {
                    into.merge(&ck).map_err(|e| format!("merging {}: {e}", path.display()))?
                }
            }
        }
        let merged =
            merged.ok_or_else(|| format!("no shard produced a checkpoint for grid {suffix:?}"))?;
        if !merged.is_complete() {
            let (lo, hi) = merged.covered();
            return Err(format!(
                "merged checkpoint for grid {suffix:?} covers only {lo}..{hi} of {} cases",
                merged.total()
            ));
        }
        let out = path_with_suffix(&cli.merged_base(), suffix);
        merged.save(&out).map_err(|e| format!("{}: {e}", out.display()))?;
    }
    eprintln!(
        "zen2-fleet: merged {files} shard checkpoints in {:.1} ms",
        zen2_obs::clock::secs_since(started) * 1e3
    );
    Ok(())
}

/// Resumes the merged checkpoints in a fresh worker with the fleet's
/// stdout: a complete checkpoint streams zero cases, so the worker
/// re-emits the report byte-identically to a single-process run.
fn reemit(cli: &FleetCli, exe: &Path) -> Result<ExitStatus, String> {
    let mut cmd = Command::new(exe);
    if cli.paper {
        cmd.arg("--paper");
    }
    if cli.json {
        cmd.arg("--json");
    }
    cmd.arg("--checkpoint").arg(cli.merged_base()).arg("--resume");
    let status =
        cmd.status().map_err(|e| format!("cannot spawn {} for the re-emit: {e}", cli.bin))?;
    Ok(status)
}

fn main() {
    let cli = FleetCli::parse(std::env::args().skip(1)).unwrap_or_else(|message| {
        eprintln!("zen2-fleet: {message}");
        std::process::exit(2);
    });
    let fail = |message: String| -> ! {
        eprintln!("zen2-fleet: {message}");
        std::process::exit(1);
    };
    let exe = worker_exe(&cli.bin).unwrap_or_else(|m| fail(m));
    eprintln!("zen2-fleet: {} over {} shards -> {}", cli.bin, cli.shards, cli.checkpoint.display());
    run_fleet(&cli, &exe).unwrap_or_else(|m| fail(m));
    merge_shards(&cli).unwrap_or_else(|m| fail(m));
    let status = reemit(&cli, &exe).unwrap_or_else(|m| fail(m));
    if !status.success() {
        fail(format!("re-emit run failed: {status}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<FleetCli, String> {
        FleetCli::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn cli_parses_a_full_fleet_invocation() {
        let cli = parse(&[
            "--bin",
            "fig09",
            "-n",
            "3",
            "--checkpoint",
            "/tmp/f9",
            "--json",
            "--workers",
            "2",
            "--retries",
            "5",
            "--drill-kill",
            "1",
        ])
        .unwrap();
        assert_eq!(cli.bin, "fig09");
        assert_eq!(cli.shards, 3);
        assert!(cli.json && !cli.paper);
        assert_eq!(cli.workers.as_deref(), Some("2"));
        assert_eq!(cli.retries, 5);
        assert_eq!(cli.drill_kill, Some(1));
        assert_eq!(cli.shard_base(2), PathBuf::from("/tmp/f9.shard2"));
        assert_eq!(cli.merged_base(), PathBuf::from("/tmp/f9.merged"));
    }

    #[test]
    fn cli_rejects_bad_fleets() {
        for (args, needle) in [
            (&["--bin", "fig02", "-n", "2", "--checkpoint", "x"][..], "no wide grid"),
            (&["-n", "2", "--checkpoint", "x"][..], "--bin is required"),
            (&["--bin", "fig09", "--checkpoint", "x"][..], "-n <shards> is required"),
            (&["--bin", "fig09", "-n", "0", "--checkpoint", "x"][..], "at least one"),
            (&["--bin", "fig09", "-n", "2"][..], "--checkpoint <prefix> is required"),
            (
                &["--bin", "fig09", "-n", "2", "--checkpoint", "x", "--drill-kill", "2"][..],
                "outside",
            ),
            (
                &["--bin", "fig09", "-n", "2", "--checkpoint", "x", "--frobnicate"][..],
                "unknown flag",
            ),
        ] {
            let err = parse(args).unwrap_err();
            assert!(err.contains(needle), "{args:?} -> {err}");
        }
    }

    #[test]
    fn suffix_table_matches_the_bins_checkpoint_layout() {
        assert_eq!(suffixes("fig09"), Some(&[""][..]));
        assert_eq!(suffixes("fig10"), Some(&["-vxorps", "-shr"][..]));
        assert_eq!(suffixes("all").map(<[_]>::len), Some(7));
        assert_eq!(suffixes("fig03"), None);
        assert_eq!(
            path_with_suffix(&PathBuf::from("/tmp/fleet.shard0"), "-vxorps"),
            PathBuf::from("/tmp/fleet.shard0-vxorps")
        );
    }
}
