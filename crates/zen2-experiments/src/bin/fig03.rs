//! Regenerates Fig. 3 (transition-delay histogram) and the §V-B anomaly.
//! `--paper` runs the full 100 000 samples; `--anomaly` adds the
//! 2.2↔2.5 GHz sweeps.
use zen2_experiments::fig03_transition as exp;
use zen2_experiments::Scale;

fn main() {
    let scale = Scale::from_args();
    let r = exp::run(&exp::Config::fig3(scale), 0xF163);
    print!("{}", exp::render(&r));
    if std::env::args().any(|a| a == "--anomaly") {
        println!("\n--- SS V-B anomaly: 2.5 <-> 2.2 GHz, waits 0-10 ms ---");
        print!("{}", exp::render(&exp::run(&exp::Config::anomaly(scale), 0xF163A)));
        println!("\n--- SS V-B anomaly control: waits >= 5 ms (effect must vanish) ---");
        print!("{}", exp::render(&exp::run(&exp::Config::anomaly_long_waits(scale), 0xF163B)));
    }
}
