//! Regenerates Fig. 3 (transition-delay histogram) and the §V-B anomaly.
//! `--paper` runs the full 100 000 samples; `--anomaly` adds the
//! 2.2↔2.5 GHz sweeps; `--json` emits the summary tables as
//! machine-readable JSON.
use zen2_experiments::fig03_transition as exp;
use zen2_experiments::{report, Scale};

fn main() {
    let scale = Scale::from_args();
    let anomaly = std::env::args().any(|a| a == "--anomaly");
    let r = exp::run(&exp::Config::fig3(scale), 0xF163);
    let extra = anomaly.then(|| {
        (
            exp::run(&exp::Config::anomaly(scale), 0xF163A),
            exp::run(&exp::Config::anomaly_long_waits(scale), 0xF163B),
        )
    });
    report::emit(
        || {
            let mut out = exp::render(&r);
            if let Some((fast, control)) = &extra {
                out.push_str("\n--- SS V-B anomaly: 2.5 <-> 2.2 GHz, waits 0-10 ms ---\n");
                out.push_str(&exp::render(fast));
                out.push_str(
                    "\n--- SS V-B anomaly control: waits >= 5 ms (effect must vanish) ---\n",
                );
                out.push_str(&exp::render(control));
            }
            out
        },
        || {
            let mut tables = exp::tables(&r);
            if let Some((fast, control)) = &extra {
                tables.extend(exp::tables(fast));
                tables.extend(exp::tables(control));
            }
            tables
        },
    );
}
