//! Regenerates Fig. 5 (I/O-die P-state and DRAM frequency sweep).
use zen2_experiments::fig05_membw as exp;
fn main() {
    print!("{}", exp::render(&exp::run(0xF165)));
}
