//! Regenerates Fig. 5 (I/O-die P-state and DRAM frequency sweep).
//! `--json` emits the summary tables as machine-readable JSON.
use zen2_experiments::{fig05_membw as exp, report};
fn main() {
    let r = exp::run(0xF165);
    report::emit(|| exp::render(&r), || exp::tables(&r));
}
