//! Regenerates Fig. 9 (RAPL quality vs the AC reference).
use zen2_experiments::{fig09_rapl_quality as exp, Scale};
fn main() {
    let r = exp::run(&exp::Config::new(Scale::from_args()), 0xF169);
    print!("{}", exp::render(&r));
}
