//! Regenerates Fig. 9 (RAPL quality vs the AC reference) through the
//! streaming sweep engine. `--json` emits the scatter table as
//! machine-readable JSON; `--checkpoint <path>` / `--resume` make the
//! grid interruptible (see `docs/SWEEPS.md`); `--obs <path>` /
//! `--progress` stream telemetry and live progress without affecting
//! results (see `docs/OBSERVABILITY.md`).
use zen2_experiments::{fig09_rapl_quality as exp, run_checkpointed_bin, Scale};
fn main() {
    let cfg = exp::Config::new(Scale::from_args());
    run_checkpointed_bin(
        "fig09",
        |session, spec| exp::run_checkpointed(&cfg, 0xF169, session, spec),
        exp::render,
        exp::tables,
    );
}
