//! Regenerates Fig. 9 (RAPL quality vs the AC reference) through the
//! streaming sweep engine. `--json` emits the scatter table as
//! machine-readable JSON.
use zen2_experiments::{fig09_rapl_quality as exp, report, Scale};
fn main() {
    let r = exp::run(&exp::Config::new(Scale::from_args()), 0xF169);
    report::emit(|| exp::render(&r), || exp::tables(&r));
}
