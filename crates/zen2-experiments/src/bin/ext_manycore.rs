//! Runs the many-core throttling prediction (paper SS VIII future work)
//! through the streaming sweep engine. `--json` emits the summary table
//! as machine-readable JSON instead of text.
use zen2_experiments::{ext_manycore as exp, Scale};
fn main() {
    let r = exp::run(&exp::Config::new(Scale::from_args()), 0xE87);
    if std::env::args().any(|a| a == "--json") {
        println!("{}", exp::table(&r).to_json());
    } else {
        print!("{}", exp::render(&r));
    }
}
