//! Runs the many-core throttling prediction (paper SS VIII future work)
//! through the streaming sweep engine. `--json` emits the summary
//! tables as machine-readable JSON; `--checkpoint <path>` / `--resume`
//! make the grid interruptible (see `docs/SWEEPS.md`); `--obs <path>` /
//! `--progress` stream telemetry and live progress without affecting
//! results (see `docs/OBSERVABILITY.md`).
use zen2_experiments::{ext_manycore as exp, run_checkpointed_bin, Scale};
fn main() {
    let cfg = exp::Config::new(Scale::from_args());
    run_checkpointed_bin(
        "ext_manycore",
        |session, spec| exp::run_checkpointed(&cfg, 0xE87, session, spec),
        exp::render,
        exp::tables,
    );
}
