//! Runs the many-core throttling prediction (paper SS VIII future work).
use zen2_experiments::{ext_manycore as exp, Scale};
fn main() {
    let r = exp::run(&exp::Config::new(Scale::from_args()), 0xE87);
    print!("{}", exp::render(&r));
}
