//! Runs the many-core throttling prediction (paper SS VIII future work)
//! through the streaming sweep engine. `--json` emits the summary
//! tables as machine-readable JSON.
use zen2_experiments::{ext_manycore as exp, report, Scale};
fn main() {
    let r = exp::run(&exp::Config::new(Scale::from_args()), 0xE87);
    report::emit(|| exp::render(&r), || exp::tables(&r));
}
