//! Scenario-torture soak: streams seeded random cases through the
//! session worker pool and audits every run against the physics
//! invariants (`zen2_sim::torture`), optionally re-running each case
//! through `System::run_scenario` directly and asserting bit-identical
//! `Run`s (differential mode).
//!
//! ```text
//! torture [--seed N] [--cases N] [--differential]
//!         [--workers N] [--shard-size N] [--obs PATH] [--progress]
//!         [--report PATH] [--inject-fault residency|trace|power [--inject-at I]]
//! ```
//!
//! Stdout carries only the deterministic audit summary, byte-identical
//! for any `--workers`/`--shard-size` split; throughput and telemetry
//! go to stderr. On a violation the offending case is re-run under
//! `--workers 1`, shrunk to a minimal scenario, and written to the
//! `--report` path (default `torture-reproducer.txt`) as a
//! self-contained reproducer; the process exits 1. `--inject-fault`
//! deliberately tampers one run (case `--inject-at`, default 0) to
//! drill exactly that pipeline. See `docs/TORTURE.md`.

use std::path::PathBuf;
use zen2_experiments::{session_from_args, ObsCli};
use zen2_sim::torture::{
    check_case, generate_case, inject_fault, render_reproducer, shrink_scenario, Fault, Violation,
};
use zen2_sim::{Case, Run, Scenario, Session, System};

struct Cli {
    seed: u64,
    cases: u64,
    differential: bool,
    report: PathBuf,
    fault: Option<Fault>,
    inject_at: u64,
}

fn usage(message: &str) -> ! {
    eprintln!("torture: {message}");
    eprintln!(
        "usage: torture [--seed N] [--cases N] [--differential] [--workers N] \
         [--shard-size N] [--obs PATH] [--progress] [--report PATH] \
         [--inject-fault residency|trace|power [--inject-at I]]"
    );
    std::process::exit(2);
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        seed: 1,
        cases: 1000,
        differential: false,
        report: PathBuf::from("torture-reproducer.txt"),
        fault: None,
        inject_at: 0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value =
            |flag: &str| args.next().unwrap_or_else(|| usage(&format!("{flag} needs a value")));
        match arg.as_str() {
            "--seed" => {
                let v = value("--seed");
                cli.seed =
                    v.parse().unwrap_or_else(|_| usage(&format!("--seed {v:?}: not a number")));
            }
            "--cases" => {
                let v = value("--cases");
                cli.cases =
                    v.parse().unwrap_or_else(|_| usage(&format!("--cases {v:?}: not a count")));
            }
            "--differential" => cli.differential = true,
            "--report" => cli.report = PathBuf::from(value("--report")),
            "--inject-fault" => {
                let v = value("--inject-fault");
                cli.fault = Some(Fault::parse(&v).unwrap_or_else(|| {
                    usage(&format!("--inject-fault {v:?}: expected residency, trace, or power"))
                }));
            }
            "--inject-at" => {
                let v = value("--inject-at");
                cli.inject_at = v
                    .parse()
                    .unwrap_or_else(|_| usage(&format!("--inject-at {v:?}: not an index")));
            }
            // Shared session/observability flags are parsed by their own
            // helpers; anything else is a typo worth stopping on.
            "--workers" | "--shard-size" | "--obs" => {
                let _ = value(&arg);
            }
            "--progress" => {}
            other => usage(&format!("unknown flag {other:?}")),
        }
    }
    if cli.fault.is_some() && cli.inject_at >= cli.cases {
        usage("--inject-at must be below --cases");
    }
    cli
}

/// One case's audit: invariant check (on the possibly tampered run)
/// plus the differential comparison (always on the pristine run).
fn audit(cli: &Cli, index: u64, mut run: Run, case: &Case) -> (Vec<Violation>, usize) {
    let mut violations = Vec::new();
    if cli.differential {
        let direct = System::new(case.config.clone(), case.seed)
            .run_scenario(&case.scenario)
            .unwrap_or_else(|e| usage(&format!("case {index} failed validation: {e}")));
        if direct != run {
            violations.push(Violation::Differential {
                detail: format!(
                    "System::run_scenario and the streaming path disagree on case {index} \
                     (direct: {} measurements ending {} ns; streamed: {} ending {} ns)",
                    direct.measurements.len(),
                    direct.end_ns,
                    run.measurements.len(),
                    run.end_ns,
                ),
            });
        }
    }
    if cli.fault.is_some() && index == cli.inject_at {
        if let Some(fault) = cli.fault {
            inject_fault(case, &mut run, fault);
        }
    }
    let measured = run.measurements.len();
    violations.extend(check_case(case, &run));
    (violations, measured)
}

/// Re-runs one failing case alone (workers = 1), shrinks its scenario
/// to a minimal still-failing one, and renders the reproducer.
fn reproduce(cli: &Cli, index: u64, violations: &[Violation]) -> String {
    let case = generate_case(cli.seed, index);
    let single = Session::new().workers(1);
    let rerun = single
        .run(std::slice::from_ref(&case))
        .ok()
        .and_then(|mut runs| runs.pop())
        .map(|run| audit(cli, index, run, &case).0);
    let confirmed = rerun.as_deref().unwrap_or(violations);
    let mut fails = |sc: &Scenario| {
        let candidate = Case::new("shrink", case.config.clone(), sc.clone(), case.seed);
        if candidate.scenario.validate(&candidate.config).is_err() {
            return false;
        }
        let Ok(mut runs) = single.run(std::slice::from_ref(&candidate)) else { return false };
        let Some(run) = runs.pop() else { return false };
        !audit(cli, index, run, &candidate).0.is_empty()
    };
    let shrunk = shrink_scenario(&case.scenario, &mut fails);
    render_reproducer(cli.seed, index, &case, confirmed, &shrunk)
}

fn main() {
    let cli = parse_cli();
    let obs = ObsCli::from_args().unwrap_or_else(|message| usage(&message));
    let mut session = session_from_args().unwrap_or_else(|message| usage(&message));
    let stack = obs.stack().unwrap_or_else(|message| usage(&message));
    if let Some(stack) = &stack {
        session = stack.attach(session);
    }

    let start_ns = zen2_obs::clock::now_ns();
    let mut failures: Vec<(u64, Vec<Violation>)> = Vec::new();
    let mut measured = 0usize;
    let outcome = session.run_streaming(zen2_sim::torture::cases(cli.seed, cli.cases), |i, run| {
        let index = i as u64;
        // Regeneration is cheap and deterministic, so the sink needs no
        // side channel to know which scenario produced this run.
        let case = generate_case(cli.seed, index);
        let (violations, m) = audit(&cli, index, run, &case);
        measured += m;
        if !violations.is_empty() {
            failures.push((index, violations));
        }
    });
    if let Some(stack) = &stack {
        if let Err(message) = stack.finish() {
            eprintln!("torture: {message}");
            std::process::exit(1);
        }
    }
    let delivered = match outcome {
        Ok(n) => n,
        Err(error) => {
            eprintln!("torture: {error}");
            std::process::exit(1);
        }
    };
    let elapsed = zen2_obs::clock::secs_since(start_ns);
    eprintln!(
        "torture: {delivered} cases in {elapsed:.2} s ({:.0} cases/s incl. checking)",
        delivered as f64 / elapsed.max(1e-9)
    );

    // The deterministic audit summary — stdout only, no timing, so the
    // output is byte-identical for any --workers/--shard-size split.
    println!("torture soak: seed {}, {} cases", cli.seed, cli.cases);
    println!(
        "checked: {delivered} runs, {measured} measurements, differential {}",
        if cli.differential { "on" } else { "off" }
    );
    match cli.fault {
        Some(fault) => println!("injected: {} fault at case {}", fault.kind(), cli.inject_at),
        None => println!("injected: none"),
    }
    println!("violations: {}", failures.iter().map(|(_, v)| v.len()).sum::<usize>());
    for (index, violations) in &failures {
        for v in violations {
            println!("  case {index}: {v}");
        }
    }

    if let Some((index, violations)) = failures.first() {
        let report = reproduce(&cli, *index, violations);
        if let Err(e) = std::fs::write(&cli.report, &report) {
            eprintln!("torture: writing {}: {e}", cli.report.display());
        } else {
            eprintln!("torture: reproducer written to {}", cli.report.display());
        }
        std::process::exit(1);
    }
}
