//! Prints the informed C-state break-even analysis (extension).
use zen2_experiments::ext_cstate_breakeven as exp;
fn main() {
    print!("{}", exp::render(&exp::run(0xB4EA)));
}
