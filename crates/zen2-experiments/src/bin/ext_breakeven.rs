//! Prints the informed C-state break-even analysis (extension).
//! `--json` emits the summary tables as machine-readable JSON.
use zen2_experiments::{ext_cstate_breakeven as exp, report};
fn main() {
    let r = exp::run(0xB4EA);
    report::emit(|| exp::render(&r), || exp::tables(&r));
}
