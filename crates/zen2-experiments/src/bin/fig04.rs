//! Regenerates Fig. 4 (L3 latency under mixed frequencies).
//! `--json` emits the summary tables as machine-readable JSON.
use zen2_experiments::{fig04_l3_latency as exp, report, Scale};
fn main() {
    let r = exp::run(&exp::Config::new(Scale::from_args()), 0xF164);
    report::emit(|| exp::render(&r), || exp::tables(&r));
}
