//! Regenerates Fig. 4 (L3 latency under mixed frequencies).
use zen2_experiments::{fig04_l3_latency as exp, Scale};
fn main() {
    let r = exp::run(&exp::Config::new(Scale::from_args()), 0xF164);
    print!("{}", exp::render(&r));
}
