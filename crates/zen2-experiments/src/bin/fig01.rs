//! Regenerates Fig. 1 (Green500 efficiency by architecture).
//! `--json` emits the summary tables as machine-readable JSON.
use zen2_experiments::{fig01_green500 as exp, report};
fn main() {
    let r = exp::run();
    report::emit(|| exp::render(&r), || exp::tables(&r));
}
