//! Regenerates Fig. 1 (Green500 efficiency by architecture).
fn main() {
    print!(
        "{}",
        zen2_experiments::fig01_green500::render(&zen2_experiments::fig01_green500::run())
    );
}
