//! Regenerates Fig. 6 (FIRESTARTER throttling with and without SMT)
//! through the streaming sweep engine. `--json` emits the summary
//! tables as machine-readable JSON.
use zen2_experiments::{fig06_firestarter as exp, report, Scale};
fn main() {
    let r = exp::run(&exp::Config::new(Scale::from_args()), 0xF166);
    report::emit(|| exp::render(&r), || exp::tables(&r));
}
