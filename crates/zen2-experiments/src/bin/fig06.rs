//! Regenerates Fig. 6 (FIRESTARTER throttling with and without SMT).
use zen2_experiments::{fig06_firestarter as exp, Scale};
fn main() {
    let r = exp::run(&exp::Config::new(Scale::from_args()), 0xF166);
    print!("{}", exp::render(&r));
}
