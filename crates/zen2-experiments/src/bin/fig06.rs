//! Regenerates Fig. 6 (FIRESTARTER throttling with and without SMT)
//! through the streaming sweep engine. `--json` emits the summary
//! tables as machine-readable JSON; `--checkpoint <path>` / `--resume`
//! make the grid interruptible (see `docs/SWEEPS.md`); `--obs <path>` /
//! `--progress` stream telemetry and live progress without affecting
//! results (see `docs/OBSERVABILITY.md`).
use zen2_experiments::{fig06_firestarter as exp, run_checkpointed_bin, Scale};
fn main() {
    let cfg = exp::Config::new(Scale::from_args());
    run_checkpointed_bin(
        "fig06",
        |session, spec| exp::run_checkpointed(&cfg, 0xF166, session, spec),
        exp::render,
        exp::tables,
    );
}
