//! Runs every experiment and prints the full paper-vs-measured report.
//! Pass `--paper` for the paper's full sample counts (slow); `--json`
//! emits every experiment's summary tables as one machine-readable
//! JSON array (text mode still prints each report as it completes).
//!
//! `--checkpoint <prefix>` / `--resume` make the wide-grid experiments
//! interruptible: each keeps its own file (`<prefix>-fig06`,
//! `<prefix>-fig09`, …), so a killed `--paper` suite resumed with the
//! same flags re-runs only the unfinished grid and re-emits the
//! finished ones from their checkpoints (see `docs/SWEEPS.md`; the
//! single-binary testing aid `--halt-after` is not supported here).
//!
//! `--progress` prints a per-experiment banner plus heartbeat lines
//! (`done/total … cases/s … eta`) on stderr, so a long `--paper` run is
//! never silent; `--obs <path>` additionally writes one shared JSONL
//! telemetry trace covering every sweep and prints an aggregate summary
//! table at the end (see `docs/OBSERVABILITY.md`). Neither flag can
//! change results.
use zen2_experiments as e;
use zen2_experiments::report::{tables_to_json, Table};
use zen2_experiments::{session_from_args, CheckpointCli, ObsCli, Scale};
use zen2_isa::KernelClass;
use zen2_sim::CheckpointError;

/// Unwraps a checkpointed experiment's outcome: `all` never passes
/// `--halt-after` through, so the result is present unless the
/// checkpoint itself failed.
fn checkpointed<R>(name: &str, outcome: Result<Option<R>, CheckpointError>) -> R {
    match outcome {
        Ok(Some(result)) => result,
        Ok(None) => unreachable!("`all` does not propagate --halt-after"),
        Err(error) => {
            eprintln!("all: {name}: {error}");
            std::process::exit(1);
        }
    }
}

/// The `--shard-range` counterpart of [`checkpointed`]: a shard run
/// only feeds its range checkpoint, so the result is usually absent and
/// only checkpoint failures matter.
fn sharded<R>(name: &str, outcome: Result<Option<R>, CheckpointError>) {
    if let Err(error) = outcome {
        eprintln!("all: {name}: {error}");
        std::process::exit(1);
    }
}

fn main() {
    let scale = Scale::from_args();
    let json = std::env::args().any(|a| a == "--json");
    let usage = |message: String| -> ! {
        eprintln!("all: {message}");
        std::process::exit(2);
    };
    let ckpt = CheckpointCli::from_args().unwrap_or_else(|m| usage(m));
    let obs = ObsCli::from_args().unwrap_or_else(|m| usage(m));
    let mut session = session_from_args().unwrap_or_else(|m| usage(m));
    let stack = obs.stack().unwrap_or_else(|m| usage(m));
    if let Some(stack) = &stack {
        session = stack.attach(session);
    }
    // With --progress a long suite is never silent: each experiment
    // announces itself on stderr, and the wide grids stream heartbeat
    // lines through the shared sink stack while they run.
    let announce = |name: &str| {
        if obs.progress {
            eprintln!("all: running {name}");
        }
    };
    // Fleet mode: a `--shard-range` run folds only the wide grids' slice
    // of cases into their range checkpoints and stops — no narrow
    // experiments, no report. `zen2-fleet` merges the shards and re-runs
    // `all` (without a shard) to emit the full suite.
    if let Some(shard) = ckpt.shard {
        announce("tab1");
        sharded(
            "tab1",
            e::tab1_mixed_freq::run_checkpointed(
                &e::tab1_mixed_freq::Config::new(scale),
                2,
                &session,
                &ckpt.spec_for("tab1"),
            ),
        );
        announce("fig06");
        sharded(
            "fig06",
            e::fig06_firestarter::run_checkpointed(
                &e::fig06_firestarter::Config::new(scale),
                5,
                &session,
                &ckpt.spec_for("fig06"),
            ),
        );
        announce("fig07");
        sharded(
            "fig07",
            e::fig07_idle_power::run_checkpointed(
                &e::fig07_idle_power::Config::new(scale),
                6,
                &session,
                &ckpt.spec_for("fig07"),
            ),
        );
        announce("fig09");
        sharded(
            "fig09",
            e::fig09_rapl_quality::run_checkpointed(
                &e::fig09_rapl_quality::Config::new(scale),
                8,
                &session,
                &ckpt.spec_for("fig09"),
            ),
        );
        let f10 = e::fig10_hamming::Config::new(scale);
        announce("fig10-vxorps");
        sharded(
            "fig10-vxorps",
            e::fig10_hamming::run_checkpointed(
                &f10,
                9,
                KernelClass::VXorps,
                &session,
                &ckpt.spec_for("fig10-vxorps"),
            ),
        );
        announce("fig10-shr");
        sharded(
            "fig10-shr",
            e::fig10_hamming::run_checkpointed(
                &f10,
                10,
                KernelClass::Shr,
                &session,
                &ckpt.spec_for("fig10-shr"),
            ),
        );
        announce("ext_manycore");
        sharded(
            "ext_manycore",
            e::ext_manycore::run_checkpointed(
                &e::ext_manycore::Config::new(scale),
                14,
                &session,
                &ckpt.spec_for("ext_manycore"),
            ),
        );
        if let Some(stack) = &stack {
            if let Err(message) = stack.finish() {
                eprintln!("all: {message}");
                std::process::exit(1);
            }
        }
        eprintln!(
            "all: shard {shard} of the wide grids done; merge the range \
             checkpoints (zen2-fleet) to produce the report"
        );
        return;
    }
    // In text mode each experiment's report prints as soon as it
    // finishes (a --paper run takes a while); --json collects every
    // table and emits one array at the end.
    let mut tables: Vec<Table> = Vec::new();
    let mut emit = |text: String, mut experiment_tables: Vec<Table>| {
        if json {
            tables.append(&mut experiment_tables);
        } else {
            print!("{text}");
        }
    };

    if !json {
        println!("=== zen2-ee: full experiment suite ({scale:?} scale) ===\n");
    }
    announce("fig01");
    let fig01 = e::fig01_green500::run();
    emit(e::fig01_green500::render(&fig01), e::fig01_green500::tables(&fig01));
    announce("fig03");
    let fig03 = e::fig03_transition::run(&e::fig03_transition::Config::fig3(scale), 1);
    emit(e::fig03_transition::render(&fig03), e::fig03_transition::tables(&fig03));
    announce("tab1");
    let tab1 = checkpointed(
        "tab1",
        e::tab1_mixed_freq::run_checkpointed(
            &e::tab1_mixed_freq::Config::new(scale),
            2,
            &session,
            &ckpt.spec_for("tab1"),
        ),
    );
    emit(e::tab1_mixed_freq::render(&tab1), e::tab1_mixed_freq::tables(&tab1));
    announce("fig04");
    let fig04 = e::fig04_l3_latency::run(&e::fig04_l3_latency::Config::new(scale), 3);
    emit(e::fig04_l3_latency::render(&fig04), e::fig04_l3_latency::tables(&fig04));
    announce("fig05");
    let fig05 = e::fig05_membw::run(4);
    emit(e::fig05_membw::render(&fig05), e::fig05_membw::tables(&fig05));
    announce("fig06");
    let fig06 = checkpointed(
        "fig06",
        e::fig06_firestarter::run_checkpointed(
            &e::fig06_firestarter::Config::new(scale),
            5,
            &session,
            &ckpt.spec_for("fig06"),
        ),
    );
    emit(e::fig06_firestarter::render(&fig06), e::fig06_firestarter::tables(&fig06));
    announce("fig07");
    let fig07 = checkpointed(
        "fig07",
        e::fig07_idle_power::run_checkpointed(
            &e::fig07_idle_power::Config::new(scale),
            6,
            &session,
            &ckpt.spec_for("fig07"),
        ),
    );
    emit(e::fig07_idle_power::render(&fig07), e::fig07_idle_power::tables(&fig07));
    announce("fig08");
    let fig08 = e::fig08_wakeup::run(&e::fig08_wakeup::Config::new(scale), 7);
    emit(e::fig08_wakeup::render(&fig08), e::fig08_wakeup::tables(&fig08));
    announce("fig09");
    let fig09 = checkpointed(
        "fig09",
        e::fig09_rapl_quality::run_checkpointed(
            &e::fig09_rapl_quality::Config::new(scale),
            8,
            &session,
            &ckpt.spec_for("fig09"),
        ),
    );
    emit(e::fig09_rapl_quality::render(&fig09), e::fig09_rapl_quality::tables(&fig09));
    let f10 = e::fig10_hamming::Config::new(scale);
    announce("fig10-vxorps");
    let fig10_vxorps = checkpointed(
        "fig10-vxorps",
        e::fig10_hamming::run_checkpointed(
            &f10,
            9,
            KernelClass::VXorps,
            &session,
            &ckpt.spec_for("fig10-vxorps"),
        ),
    );
    emit(e::fig10_hamming::render(&fig10_vxorps), e::fig10_hamming::tables(&fig10_vxorps));
    announce("fig10-shr");
    let fig10_shr = checkpointed(
        "fig10-shr",
        e::fig10_hamming::run_checkpointed(
            &f10,
            10,
            KernelClass::Shr,
            &session,
            &ckpt.spec_for("fig10-shr"),
        ),
    );
    emit(e::fig10_hamming::render(&fig10_shr), e::fig10_hamming::tables(&fig10_shr));
    announce("sec5a");
    let sec5a = e::sec5a_sibling::run(11);
    emit(e::sec5a_sibling::render(&sec5a), e::sec5a_sibling::tables(&sec5a));
    announce("sec6b");
    let sec6b = e::sec6b_offline::run(12);
    emit(e::sec6b_offline::render(&sec6b), e::sec6b_offline::tables(&sec6b));
    announce("sec7");
    let sec7 = e::sec7_update_rate::run(&e::sec7_update_rate::Config::default(), 13);
    emit(e::sec7_update_rate::render(&sec7), e::sec7_update_rate::tables(&sec7));
    announce("ext_manycore");
    let manycore = checkpointed(
        "ext_manycore",
        e::ext_manycore::run_checkpointed(
            &e::ext_manycore::Config::new(scale),
            14,
            &session,
            &ckpt.spec_for("ext_manycore"),
        ),
    );
    emit(e::ext_manycore::render(&manycore), e::ext_manycore::tables(&manycore));
    announce("ext_cstate_breakeven");
    let breakeven = e::ext_cstate_breakeven::run(15);
    emit(e::ext_cstate_breakeven::render(&breakeven), e::ext_cstate_breakeven::tables(&breakeven));

    if let Some(stack) = &stack {
        if let Err(message) = stack.finish() {
            eprintln!("all: {message}");
            std::process::exit(1);
        }
    }
    if json {
        println!("{}", tables_to_json(&tables));
    }
}
