//! Runs every experiment and prints the full paper-vs-measured report.
//! Pass `--paper` for the paper's full sample counts (slow).
use zen2_experiments as e;
use zen2_experiments::Scale;
use zen2_isa::KernelClass;

fn main() {
    let scale = Scale::from_args();
    println!("=== zen2-ee: full experiment suite ({scale:?} scale) ===\n");
    print!("{}", e::fig01_green500::render(&e::fig01_green500::run()));
    print!(
        "{}",
        e::fig03_transition::render(&e::fig03_transition::run(
            &e::fig03_transition::Config::fig3(scale),
            1
        ))
    );
    print!(
        "{}",
        e::tab1_mixed_freq::render(&e::tab1_mixed_freq::run(
            &e::tab1_mixed_freq::Config::new(scale),
            2
        ))
    );
    print!(
        "{}",
        e::fig04_l3_latency::render(&e::fig04_l3_latency::run(
            &e::fig04_l3_latency::Config::new(scale),
            3
        ))
    );
    print!("{}", e::fig05_membw::render(&e::fig05_membw::run(4)));
    print!(
        "{}",
        e::fig06_firestarter::render(&e::fig06_firestarter::run(
            &e::fig06_firestarter::Config::new(scale),
            5
        ))
    );
    print!(
        "{}",
        e::fig07_idle_power::render(&e::fig07_idle_power::run(
            &e::fig07_idle_power::Config::new(scale),
            6
        ))
    );
    print!(
        "{}",
        e::fig08_wakeup::render(&e::fig08_wakeup::run(&e::fig08_wakeup::Config::new(scale), 7))
    );
    print!(
        "{}",
        e::fig09_rapl_quality::render(&e::fig09_rapl_quality::run(
            &e::fig09_rapl_quality::Config::new(scale),
            8
        ))
    );
    let f10 = e::fig10_hamming::Config::new(scale);
    print!("{}", e::fig10_hamming::render(&e::fig10_hamming::run(&f10, 9, KernelClass::VXorps)));
    print!("{}", e::fig10_hamming::render(&e::fig10_hamming::run(&f10, 10, KernelClass::Shr)));
    print!("{}", e::sec5a_sibling::render(&e::sec5a_sibling::run(11)));
    print!("{}", e::sec6b_offline::render(&e::sec6b_offline::run(12)));
    print!(
        "{}",
        e::sec7_update_rate::render(&e::sec7_update_rate::run(
            &e::sec7_update_rate::Config::default(),
            13
        ))
    );
    print!(
        "{}",
        e::ext_manycore::render(&e::ext_manycore::run(&e::ext_manycore::Config::new(scale), 14))
    );
    print!("{}", e::ext_cstate_breakeven::render(&e::ext_cstate_breakeven::run(15)));
}
