//! Regenerates Fig. 7 (idle-state power staircase).
use zen2_experiments::{fig07_idle_power as exp, Scale};
fn main() {
    let r = exp::run(&exp::Config::new(Scale::from_args()), 0xF167);
    print!("{}", exp::render(&r));
}
