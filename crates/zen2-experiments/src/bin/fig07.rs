//! Regenerates Fig. 7 (idle-state power staircase) through the
//! streaming sweep engine. `--json` emits the summary tables as
//! machine-readable JSON.
use zen2_experiments::{fig07_idle_power as exp, report, Scale};
fn main() {
    let r = exp::run(&exp::Config::new(Scale::from_args()), 0xF167);
    report::emit(|| exp::render(&r), || exp::tables(&r));
}
