//! Regenerates Fig. 7 (idle-state power staircase) through the
//! streaming sweep engine. `--json` emits the summary tables as
//! machine-readable JSON; `--checkpoint <path>` / `--resume` make the
//! grid interruptible (see `docs/SWEEPS.md`); `--obs <path>` /
//! `--progress` stream telemetry and live progress without affecting
//! results (see `docs/OBSERVABILITY.md`).
use zen2_experiments::{fig07_idle_power as exp, run_checkpointed_bin, Scale};
fn main() {
    let cfg = exp::Config::new(Scale::from_args());
    run_checkpointed_bin(
        "fig07",
        |session, spec| exp::run_checkpointed(&cfg, 0xF167, session, spec),
        exp::render,
        exp::tables,
    );
}
