//! Regenerates Table I (mixed frequencies on one CCX).
use zen2_experiments::{tab1_mixed_freq as exp, Scale};
fn main() {
    let r = exp::run(&exp::Config::new(Scale::from_args()), 0x7AB1);
    print!("{}", exp::render(&r));
}
