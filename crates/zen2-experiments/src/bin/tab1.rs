//! Regenerates Table I (mixed frequencies on one CCX) through the
//! streaming sweep engine. `--json` emits the summary tables as
//! machine-readable JSON.
use zen2_experiments::{report, tab1_mixed_freq as exp, Scale};
fn main() {
    let r = exp::run(&exp::Config::new(Scale::from_args()), 0x7AB1);
    report::emit(|| exp::render(&r), || exp::tables(&r));
}
