//! Regenerates Table I (mixed frequencies on one CCX) through the
//! streaming sweep engine. `--json` emits the summary table as
//! machine-readable JSON instead of text.
use zen2_experiments::{tab1_mixed_freq as exp, Scale};
fn main() {
    let r = exp::run(&exp::Config::new(Scale::from_args()), 0x7AB1);
    if std::env::args().any(|a| a == "--json") {
        println!("{}", exp::table(&r).to_json());
    } else {
        print!("{}", exp::render(&r));
    }
}
