//! Regenerates Table I (mixed frequencies on one CCX) through the
//! streaming sweep engine. `--json` emits the summary tables as
//! machine-readable JSON; `--checkpoint <path>` / `--resume` make the
//! grid interruptible (see `docs/SWEEPS.md`); `--obs <path>` /
//! `--progress` stream telemetry and live progress without affecting
//! results (see `docs/OBSERVABILITY.md`).
use zen2_experiments::{run_checkpointed_bin, tab1_mixed_freq as exp, Scale};
fn main() {
    let cfg = exp::Config::new(Scale::from_args());
    run_checkpointed_bin(
        "tab1",
        |session, spec| exp::run_checkpointed(&cfg, 0x7AB1, session, spec),
        exp::render,
        exp::tables,
    );
}
