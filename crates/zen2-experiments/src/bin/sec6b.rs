//! Regenerates the §VI-B observation (offline threads block package C6).
use zen2_experiments::sec6b_offline as exp;
fn main() {
    print!("{}", exp::render(&exp::run(0x5EC6B)));
}
