//! Regenerates the §VI-B observation (offline threads block package C6).
//! `--json` emits the summary tables as machine-readable JSON.
use zen2_experiments::{report, sec6b_offline as exp};
fn main() {
    let r = exp::run(0x5EC6B);
    report::emit(|| exp::render(&r), || exp::tables(&r));
}
