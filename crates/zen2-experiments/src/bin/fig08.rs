//! Regenerates Fig. 8 (C-state wakeup latencies).
//! `--json` emits the summary tables as machine-readable JSON.
use zen2_experiments::{fig08_wakeup as exp, report, Scale};
fn main() {
    let r = exp::run(&exp::Config::new(Scale::from_args()), 0xF168);
    report::emit(|| exp::render(&r), || exp::tables(&r));
}
