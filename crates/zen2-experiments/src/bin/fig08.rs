//! Regenerates Fig. 8 (C-state wakeup latencies).
use zen2_experiments::{fig08_wakeup as exp, Scale};
fn main() {
    let r = exp::run(&exp::Config::new(Scale::from_args()), 0xF168);
    print!("{}", exp::render(&r));
}
