//! Regenerates Fig. 10 (operand-Hamming-weight power ECDFs), for both the
//! 256-bit vxorps sweep and the 64-bit shr contrast, through the
//! streaming sweep engine. `--json` emits both summary tables as
//! machine-readable JSON; `--checkpoint <path>` keeps one checkpoint
//! file per kernel (`<path>-vxorps`, `<path>-shr`), so `--resume`
//! re-emits a finished kernel without re-simulating it (see
//! `docs/SWEEPS.md`); `--obs <path>` / `--progress` stream telemetry
//! and live progress without affecting results (see
//! `docs/OBSERVABILITY.md`).
use zen2_experiments::{
    fig10_hamming as exp, report, session_from_args, CheckpointCli, ObsCli, Scale,
};
use zen2_isa::KernelClass;

fn main() {
    let cfg = exp::Config::new(Scale::from_args());
    let usage = |message: String| -> ! {
        eprintln!("fig10: {message}");
        std::process::exit(2);
    };
    let cli = CheckpointCli::from_args().unwrap_or_else(|m| usage(m));
    let obs = ObsCli::from_args().unwrap_or_else(|m| usage(m));
    let mut session = session_from_args().unwrap_or_else(|m| usage(m));
    let stack = obs.stack().unwrap_or_else(|m| usage(m));
    if let Some(stack) = &stack {
        session = stack.attach(session);
    }
    // Fig. 10 grids are a single case each (the blocks share one
    // machine), so a run can never halt mid-kernel; the result is
    // absent only for a `--shard-range` slice that holds no case.
    let run = |seed, class, name: &str| {
        exp::run_checkpointed(&cfg, seed, class, &session, &cli.spec_for(name)).unwrap_or_else(
            |error| {
                eprintln!("fig10: {error}");
                std::process::exit(1);
            },
        )
    };
    let vxorps = run(0xF1610, KernelClass::VXorps, "vxorps");
    let shr = run(0xF1611, KernelClass::Shr, "shr");
    if let Some(stack) = &stack {
        if let Err(message) = stack.finish() {
            eprintln!("fig10: {message}");
            std::process::exit(1);
        }
    }
    match (vxorps, shr) {
        (Some(vxorps), Some(shr)) => report::emit(
            || format!("{}{}", exp::render(&vxorps), exp::render(&shr)),
            || exp::tables(&vxorps).into_iter().chain(exp::tables(&shr)).collect(),
        ),
        _ => {
            let shard = cli.shard.expect("single-case fig10 grids cannot halt mid-run");
            eprintln!(
                "fig10: shard {shard} done; merge the range checkpoints \
                 (zen2-fleet) to produce the report"
            );
        }
    }
}
