//! Regenerates Fig. 10 (operand-Hamming-weight power ECDFs), for both the
//! 256-bit vxorps sweep and the 64-bit shr contrast.
use zen2_experiments::{fig10_hamming as exp, Scale};
use zen2_isa::KernelClass;
fn main() {
    let cfg = exp::Config::new(Scale::from_args());
    print!("{}", exp::render(&exp::run(&cfg, 0xF1610, KernelClass::VXorps)));
    print!("{}", exp::render(&exp::run(&cfg, 0xF1611, KernelClass::Shr)));
}
