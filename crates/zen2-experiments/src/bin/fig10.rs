//! Regenerates Fig. 10 (operand-Hamming-weight power ECDFs), for both the
//! 256-bit vxorps sweep and the 64-bit shr contrast, through the
//! streaming sweep engine. `--json` emits both summary tables as
//! machine-readable JSON.
use zen2_experiments::{fig10_hamming as exp, report, Scale};
use zen2_isa::KernelClass;
fn main() {
    let cfg = exp::Config::new(Scale::from_args());
    let vxorps = exp::run(&cfg, 0xF1610, KernelClass::VXorps);
    let shr = exp::run(&cfg, 0xF1611, KernelClass::Shr);
    report::emit(
        || format!("{}{}", exp::render(&vxorps), exp::render(&shr)),
        || exp::tables(&vxorps).into_iter().chain(exp::tables(&shr)).collect(),
    );
}
