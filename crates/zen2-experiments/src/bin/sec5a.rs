//! Regenerates the §V-A observation (idle/offline sibling raises the core
//! frequency). `--json` emits the summary tables as machine-readable JSON.
use zen2_experiments::{report, sec5a_sibling as exp};
fn main() {
    let r = exp::run(0x5EC5A);
    report::emit(|| exp::render(&r), || exp::tables(&r));
}
