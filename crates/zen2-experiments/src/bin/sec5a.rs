//! Regenerates the §V-A observation (idle/offline sibling raises the core
//! frequency).
use zen2_experiments::sec5a_sibling as exp;
fn main() {
    print!("{}", exp::render(&exp::run(0x5EC5A)));
}
