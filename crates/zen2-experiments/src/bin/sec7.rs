//! Regenerates the §VII RAPL update-rate measurement.
use zen2_experiments::sec7_update_rate as exp;
fn main() {
    print!("{}", exp::render(&exp::run(&exp::Config::default(), 0x5EC7)));
}
