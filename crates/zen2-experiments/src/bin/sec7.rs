//! Regenerates the §VII RAPL update-rate measurement.
//! `--json` emits the summary tables as machine-readable JSON.
use zen2_experiments::{report, sec7_update_rate as exp};
fn main() {
    let r = exp::run(&exp::Config::default(), 0x5EC7);
    report::emit(|| exp::render(&r), || exp::tables(&r));
}
