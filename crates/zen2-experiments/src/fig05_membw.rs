//! Fig. 5 — DRAM bandwidth and latency for I/O-die P-states and DRAM
//! frequencies.
//!
//! STREAM triad (Intel-compiled in the paper) with 1–4 cores on one CCD
//! plus the "4 (2 CCX)" placement, and the Molka pointer-chase latency
//! benchmark (prefetchers off, huge pages), swept over the BIOS I/O-die
//! P-state and both DRAM clocks.
//!
//! Every swept BIOS configuration is its own `SimConfig`; the cells are
//! declarative [`Scenario`]s observing [`Probe::StreamTriadGbs`] and
//! [`Probe::DramLatencyNs`], executed as one [`Session`] batch.

use crate::report::Table;
use crate::seeds;
use serde::Serialize;
use zen2_mem::{DramFreq, IodPstate};
use zen2_sim::{Case, Probe, Run, Scenario, Session, SimConfig, Window};

/// The core-count columns of Fig. 5a ("4 (2 CCX)" is the fifth).
pub const CORE_COLUMNS: [u32; 5] = [1, 2, 3, 4, 4];

/// Paper Fig. 5a bandwidths in GB/s, indexed `[pstate][dram][core_col]`
/// with P-states in sweep order P3, P2, P1, P0, auto.
pub const PAPER_BW: [[[f64; 5]; 2]; 5] = [
    [[22.2, 28.3, 28.9, 31.7, 32.1], [22.2, 28.2, 30.0, 30.6, 31.0]],
    [[27.2, 33.7, 37.6, 39.6, 39.6], [27.1, 33.7, 39.1, 40.1, 40.1]],
    [[26.8, 32.9, 36.8, 38.8, 38.9], [26.8, 32.9, 38.5, 39.5, 39.5]],
    [[26.5, 32.4, 35.9, 38.1, 38.1], [26.4, 32.4, 37.8, 38.6, 38.6]],
    [[26.5, 32.6, 36.0, 38.2, 38.2], [26.5, 32.5, 37.9, 38.8, 38.8]],
];

/// Paper Fig. 5b latencies in ns, indexed `[pstate][dram]`.
pub const PAPER_LAT: [[f64; 2]; 5] =
    [[142.0, 137.0], [101.0, 104.0], [113.0, 110.0], [96.0, 109.0], [92.0, 104.0]];

/// One swept configuration's results.
#[derive(Debug, Clone, Serialize)]
pub struct CellResult {
    /// I/O-die P-state label.
    pub pstate: String,
    /// DRAM frequency label.
    pub dram: String,
    /// Triad bandwidth per core-count column, GB/s.
    pub bandwidth_gbs: [f64; 5],
    /// Pointer-chase latency, ns.
    pub latency_ns: f64,
}

/// Builds one cell's scenario: both benchmarks are pure functions of the
/// BIOS clock plan, so everything is observed at t = 0.
pub fn cell_scenario() -> Scenario {
    let mut sc = Scenario::new();
    sc.probe("lat", Probe::DramLatencyNs, Window::at(0));
    for (col, &cores) in CORE_COLUMNS.iter().enumerate() {
        sc.probe(format!("bw{col}"), Probe::StreamTriadGbs(cores), Window::at(0));
    }
    sc
}

/// Full experiment output.
#[derive(Debug, Clone, Serialize)]
pub struct Fig5Result {
    /// All cells in sweep order (P3..auto × 1.467/1.6).
    pub cells: Vec<CellResult>,
    /// Worst relative bandwidth deviation from the paper.
    pub worst_bw_rel_err: f64,
    /// Worst relative latency deviation from the paper.
    pub worst_lat_rel_err: f64,
}

/// Reduces one cell's [`Run`].
fn reduce(pstate: IodPstate, dram: DramFreq, run: &Run) -> CellResult {
    let mut bw = [0.0; 5];
    for (col, slot) in bw.iter_mut().enumerate() {
        *slot = run.gbs(&format!("bw{col}"));
    }
    CellResult {
        pstate: pstate.to_string(),
        dram: dram.to_string(),
        bandwidth_gbs: bw,
        latency_ns: run.nanos("lat"),
    }
}

/// Runs the full sweep as one [`Session`] batch.
pub fn run(seed: u64) -> Fig5Result {
    let mut cases = Vec::new();
    let mut sweep = Vec::new();
    for (pi, &pstate) in IodPstate::SWEEP.iter().enumerate() {
        for (di, &dram) in DramFreq::SWEEP.iter().enumerate() {
            let mut cfg = SimConfig::epyc_7502_2s();
            cfg.iod_pstate = pstate;
            cfg.dram = dram;
            cases.push(Case::new(
                format!("{pstate}-{dram}"),
                cfg,
                cell_scenario(),
                seeds::child(seed, (pi * 2 + di) as u64),
            ));
            sweep.push((pstate, dram));
        }
    }
    let runs = Session::new().run(&cases).expect("fig05 scenarios validate");
    let cells: Vec<CellResult> =
        sweep.iter().zip(&runs).map(|(&(pstate, dram), run)| reduce(pstate, dram, run)).collect();

    let mut worst_bw = 0.0f64;
    let mut worst_lat = 0.0f64;
    for (pi, (paper_bw_row, paper_lat_row)) in PAPER_BW.iter().zip(&PAPER_LAT).enumerate() {
        for (di, (paper_bw, &paper_lat)) in paper_bw_row.iter().zip(paper_lat_row).enumerate() {
            let cell = &cells[pi * 2 + di];
            for (&measured, &paper) in cell.bandwidth_gbs.iter().zip(paper_bw) {
                worst_bw = worst_bw.max((measured - paper).abs() / paper);
            }
            worst_lat = worst_lat.max((cell.latency_ns - paper_lat).abs() / paper_lat);
        }
    }
    Fig5Result { cells, worst_bw_rel_err: worst_bw, worst_lat_rel_err: worst_lat }
}

/// Renders both heatmaps as paper/measured tables.
pub fn render(result: &Fig5Result) -> String {
    let mut out: String = tables(result).iter().map(Table::render).collect();
    out.push_str(&format!(
        "worst deviation: bandwidth {:.1}%, latency {:.1}%\n",
        result.worst_bw_rel_err * 100.0,
        result.worst_lat_rel_err * 100.0
    ));
    out
}

/// Both heatmaps as [`Table`]s (for text, CSV, or JSON output).
pub fn tables(result: &Fig5Result) -> Vec<Table> {
    let mut bw = Table::new(
        "Fig. 5a — STREAM triad bandwidth [GB/s], paper / measured",
        &["IOD P-state", "DRAM", "1 core", "2 cores", "3 cores", "4 cores", "4 (2 CCX)"],
    );
    for (pi, paper_row) in PAPER_BW.iter().enumerate() {
        for (di, paper_bw) in paper_row.iter().enumerate() {
            let cell = &result.cells[pi * 2 + di];
            let mut row = vec![cell.pstate.clone(), cell.dram.clone()];
            for (&paper, &measured) in paper_bw.iter().zip(&cell.bandwidth_gbs) {
                row.push(format!("{paper:.1} / {measured:.1}"));
            }
            bw.row(&row);
        }
    }
    let mut lat = Table::new(
        "Fig. 5b — memory latency [ns], paper / measured",
        &["IOD P-state", "DRAM 1.467 GHz", "DRAM 1.6 GHz"],
    );
    for (pi, _) in IodPstate::SWEEP.iter().enumerate() {
        lat.row(&[
            result.cells[pi * 2].pstate.clone(),
            format!("{:.0} / {:.1}", PAPER_LAT[pi][0], result.cells[pi * 2].latency_ns),
            format!("{:.0} / {:.1}", PAPER_LAT[pi][1], result.cells[pi * 2 + 1].latency_ns),
        ]);
    }
    vec![bw, lat]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrices_match_fig5_within_ten_percent() {
        let r = run(41);
        assert!(r.worst_bw_rel_err < 0.10, "bw {:.3}", r.worst_bw_rel_err);
        assert!(r.worst_lat_rel_err < 0.08, "lat {:.3}", r.worst_lat_rel_err);
    }

    #[test]
    fn auto_wins_latency_and_p0_matches_auto_bandwidth() {
        let r = run(42);
        let lat = |pi: usize, di: usize| r.cells[pi * 2 + di].latency_ns;
        // auto (index 4) beats pinned P0 (index 3) at DDR4-2933.
        assert!(lat(4, 0) < lat(3, 0));
        // auto ~ P0 in bandwidth (saturated column).
        let bw_auto = r.cells[4 * 2].bandwidth_gbs[3];
        let bw_p0 = r.cells[3 * 2].bandwidth_gbs[3];
        assert!((bw_auto - bw_p0).abs() / bw_p0 < 0.02);
    }

    #[test]
    fn p3_loses_a_third_of_bandwidth() {
        let r = run(43);
        let p3 = r.cells[0].bandwidth_gbs[3];
        let p0 = r.cells[3 * 2].bandwidth_gbs[3];
        assert!(p3 < 0.9 * p0, "P3 {p3:.1} vs P0 {p0:.1}");
    }

    #[test]
    fn two_ccx_column_equals_one_ccx_column() {
        let r = run(44);
        for cell in &r.cells {
            assert_eq!(cell.bandwidth_gbs[3], cell.bandwidth_gbs[4]);
        }
    }

    #[test]
    fn render_includes_both_panels() {
        let s = render(&run(45));
        assert!(s.contains("Fig. 5a"));
        assert!(s.contains("Fig. 5b"));
    }
}
