//! Fig. 3 — frequency transition delays, plus the §V-B 2.2↔2.5 GHz
//! anomaly.
//!
//! Methodology (refined from Mazouz et al., as in the paper): the
//! benchmark switches the core frequency and watches a minimal workload's
//! performance until the target level is reached and validated; before
//! the next sample it waits a random time between 0 and 10 ms. Each
//! (initial, target) combination is measured many times; other cores sit
//! at the minimum frequency.
//!
//! The whole schedule is a declarative [`Scenario`]: the random waits are
//! pre-drawn from the seed, every switch is a recorded step, and the
//! delays are recovered from the lo2s-style event trace via
//! [`Probe::TraceEvents`] — the time from `FreqRequested` to the matching
//! `FreqApplied` is exactly what the polling benchmark observes, up to
//! its detection granularity (added as noise in the reduction).

use crate::methodology_bridge::detection_noise_ns;
use crate::report::{compare, Table};
use crate::seeds;
use crate::Scale;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use zen2_isa::{KernelClass, OperandWeight};
use zen2_sim::methodology::{mean, Histogram};
use zen2_sim::time::{Ns, MICROSECOND, MILLISECOND};
use zen2_sim::trace::Event;
use zen2_sim::{Case, EventFilter, Probe, Run, Scenario, Session, SimConfig, Window};
use zen2_topology::{CoreId, ThreadId};

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Samples per direction.
    pub samples: usize,
    /// Initial frequency (MHz).
    pub from_mhz: u32,
    /// Target frequency (MHz).
    pub to_mhz: u32,
    /// Maximum random wait between samples, milliseconds.
    pub max_wait_ms: u64,
    /// Minimum random wait between samples, milliseconds.
    pub min_wait_ms: u64,
}

impl Config {
    /// The Fig. 3 configuration (2.2 → 1.5 GHz) at a given scale
    /// (paper: 100 000 samples).
    pub fn fig3(scale: Scale) -> Self {
        Self {
            samples: scale.pick(2_000, 100_000),
            from_mhz: 2200,
            to_mhz: 1500,
            max_wait_ms: 10,
            min_wait_ms: 0,
        }
    }

    /// The §V-B anomaly configuration (2.5 ↔ 2.2 GHz, short waits).
    pub fn anomaly(scale: Scale) -> Self {
        Self {
            samples: scale.pick(2_000, 100_000),
            from_mhz: 2500,
            to_mhz: 2200,
            max_wait_ms: 10,
            min_wait_ms: 0,
        }
    }

    /// The anomaly configuration with ≥5 ms waits (effect must vanish).
    pub fn anomaly_long_waits(scale: Scale) -> Self {
        Self { min_wait_ms: 5, max_wait_ms: 15, ..Self::anomaly(scale) }
    }
}

/// Measured delay distribution for one direction.
#[derive(Debug, Clone, Serialize)]
pub struct DirectionResult {
    /// Transition direction label.
    pub label: String,
    /// All measured delays in microseconds.
    pub delays_us: Vec<f64>,
    /// Minimum delay (µs).
    pub min_us: f64,
    /// Maximum delay (µs).
    pub max_us: f64,
    /// Mean delay (µs).
    pub mean_us: f64,
    /// Fraction of samples that took a fast path (<350 µs for a
    /// down-switch, <5 µs for an up-switch).
    pub fast_fraction: f64,
}

/// Full experiment output.
#[derive(Debug, Clone, Serialize)]
pub struct Fig3Result {
    /// Down-switch (from → to) distribution.
    pub down: DirectionResult,
    /// Up-switch (to → from) distribution.
    pub up: DirectionResult,
    /// Histogram of down-switch delays in 25 µs bins over [0, 1500) µs.
    pub histogram_counts: Vec<u64>,
    /// Coefficient of variation over the uniform plateau bins.
    pub plateau_cv: f64,
}

/// Settling time at the initial frequency before the first sample.
const SETTLE_NS: Ns = 20 * MILLISECOND;

/// Upper bound on any transition delay (a ≤1 ms slot wait plus the 390 µs
/// ramp, with margin): consecutive switches are spaced at least this far
/// apart, so every transition completes — and is visible in the trace —
/// before the next request lands.
const SPACING_NS: Ns = 1_500 * MICROSECOND;

/// Builds the declarative benchmark schedule: other cores pinned to the
/// minimum frequency, a busy loop on the measured core, a settle phase at
/// the initial frequency, then `samples` down/up switch pairs separated
/// by the paper's random waits (pre-drawn from the seed).
pub fn scenario(cfg: &Config, seed: u64) -> Scenario {
    let sim = SimConfig::epyc_7502_2s();
    let min_mhz = sim.min_mhz();
    let num_threads = sim.topology.num_threads() as u32;

    let mut sc = Scenario::new();
    let mut at = sc.at(0);
    for t in 2..num_threads {
        at = at.pstate(ThreadId(t), min_mhz);
    }
    at.workload(ThreadId(0), KernelClass::BusyWait, OperandWeight::HALF)
        .pstate(ThreadId(1), cfg.from_mhz)
        .pstate(ThreadId(0), cfg.from_mhz);

    let mut rng = ChaCha8Rng::seed_from_u64(seeds::child(seed, 1));
    let span_us = (cfg.max_wait_ms - cfg.min_wait_ms) * 1000;
    let mut t = SETTLE_NS;
    for _ in 0..cfg.samples {
        t += cfg.min_wait_ms * MILLISECOND + rng.gen_range(0..=span_us) * MICROSECOND;
        sc.at(t).pstate(ThreadId(1), cfg.to_mhz).pstate(ThreadId(0), cfg.to_mhz);
        t += SPACING_NS;
        t += cfg.min_wait_ms * MILLISECOND + rng.gen_range(0..=span_us) * MICROSECOND;
        sc.at(t).pstate(ThreadId(1), cfg.from_mhz).pstate(ThreadId(0), cfg.from_mhz);
        t += SPACING_NS;
    }
    sc.probe(
        "freq_events",
        Probe::TraceEvents(EventFilter::Freq(CoreId(0))),
        Window::span(0, t + MILLISECOND),
    );
    sc
}

/// Recovers the per-direction delay distributions from the event trace.
fn reduce(cfg: &Config, seed: u64, run: &Run) -> Fig3Result {
    let mut noise_rng = ChaCha8Rng::seed_from_u64(seeds::child(seed, 2));
    let mut down_delays = Vec::with_capacity(cfg.samples);
    let mut up_delays = Vec::with_capacity(cfg.samples);

    // Both siblings request at the same instant and at most one of the
    // two requests starts a transition, so pair each applied frequency
    // with the first same-target request since the last application.
    let mut pending: Option<(Ns, u32)> = None;
    for record in run.events("freq_events") {
        match record.event {
            Event::FreqRequested { target_mhz, .. }
                if pending.map(|(_, mhz)| mhz) != Some(target_mhz) =>
            {
                pending = Some((record.at_ns, target_mhz));
            }
            Event::FreqApplied { mhz, .. } => {
                let Some((requested_at, target)) = pending.take() else { continue };
                // The settle transition into the initial frequency is not
                // a sample.
                if mhz != target || requested_at < SETTLE_NS {
                    continue;
                }
                let delay =
                    (record.at_ns - requested_at) as f64 + detection_noise_ns(&mut noise_rng);
                if target == cfg.to_mhz {
                    down_delays.push(delay / 1000.0);
                } else {
                    up_delays.push(delay / 1000.0);
                }
            }
            _ => {}
        }
    }

    let mut histogram = Histogram::new(0.0, 1500.0, 60);
    for &d in &down_delays {
        histogram.add(d);
    }
    // The uniform plateau spans bins 16..=54 (400-1375 µs).
    let plateau_cv = histogram.plateau_cv(16, 55);

    let direction = |label: String, delays: &[f64], fast_threshold_us: f64| DirectionResult {
        label,
        min_us: delays.iter().copied().fold(f64::INFINITY, f64::min),
        max_us: delays.iter().copied().fold(0.0, f64::max),
        mean_us: mean(delays),
        fast_fraction: delays.iter().filter(|&&d| d < fast_threshold_us).count() as f64
            / delays.len() as f64,
        delays_us: delays.to_vec(),
    };

    Fig3Result {
        down: direction(format!("{} -> {} MHz", cfg.from_mhz, cfg.to_mhz), &down_delays, 350.0),
        up: direction(format!("{} -> {} MHz", cfg.to_mhz, cfg.from_mhz), &up_delays, 5.0),
        histogram_counts: histogram.counts().to_vec(),
        plateau_cv,
    }
}

/// Runs the transition-delay experiment through a [`Session`].
pub fn run(cfg: &Config, seed: u64) -> Fig3Result {
    let case =
        Case::new("fig03", SimConfig::epyc_7502_2s(), scenario(cfg, seed), seeds::child(seed, 0));
    let runs = Session::new().run(std::slice::from_ref(&case)).expect("fig03 scenario validates");
    reduce(cfg, seed, &runs[0])
}

/// Renders the paper-style summary.
pub fn render(result: &Fig3Result) -> String {
    let tables = tables(result);
    let mut out = tables[0].render();
    out.push_str(&format!(
        "plateau uniformity (CV over 400-1375 us bins): {:.3}\n",
        result.plateau_cv
    ));
    out.push_str(&format!(
        "paper vs measured mean (down): {}\n",
        compare(890.0, result.down.mean_us, " us")
    ));
    out.push_str(&tables[1].render());
    out
}

/// The summary and histogram as [`Table`]s (for text, CSV, or JSON
/// output).
pub fn tables(result: &Fig3Result) -> Vec<Table> {
    let mut t = Table::new(
        "Fig. 3 — frequency transition delays (paper: uniform 390-1390 us for 2.2->1.5 GHz)",
        &["direction", "min [us]", "max [us]", "mean [us]", "fast-path fraction"],
    );
    for d in [&result.down, &result.up] {
        t.row(&[
            d.label.clone(),
            format!("{:.0}", d.min_us),
            format!("{:.0}", d.max_us),
            format!("{:.0}", d.mean_us),
            format!("{:.3}", d.fast_fraction),
        ]);
    }
    let mut hist = Table::new("Fig. 3 histogram (25 us bins)", &["bin start [us]", "count"]);
    for (i, &c) in result.histogram_counts.iter().enumerate() {
        hist.row(&[format!("{}", i * 25), format!("{c}")]);
    }
    vec![t, hist]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_distribution_is_uniform_390_to_1390() {
        let result = run(&Config::fig3(Scale::Quick), 7);
        assert_eq!(result.down.delays_us.len(), Config::fig3(Scale::Quick).samples);
        assert_eq!(result.up.delays_us.len(), Config::fig3(Scale::Quick).samples);
        assert!(result.down.min_us >= 389.0, "min {}", result.down.min_us);
        assert!(result.down.max_us <= 1393.0, "max {}", result.down.max_us);
        assert!((result.down.mean_us - 890.0).abs() < 25.0, "mean {}", result.down.mean_us);
        // No fast paths for the 2.2<->1.5 pair.
        assert_eq!(result.down.fast_fraction, 0.0);
        assert_eq!(result.up.fast_fraction, 0.0);
        // Roughly uniform plateau.
        assert!(result.plateau_cv < 0.35, "plateau CV {}", result.plateau_cv);
    }

    #[test]
    fn up_switches_are_slightly_faster() {
        let result = run(&Config::fig3(Scale::Quick), 11);
        // 360 us ramp vs 390 us ramp.
        assert!(result.up.min_us >= 359.0 && result.up.min_us < 375.0, "{}", result.up.min_us);
        assert!(result.up.mean_us < result.down.mean_us);
    }

    #[test]
    fn anomaly_appears_for_25_22_with_short_waits() {
        let result = run(&Config::anomaly(Scale::Quick), 13);
        // Down-switches below the 390 us minimum exist (down to ~160 us).
        assert!(result.down.min_us < 250.0, "fast down min {}", result.down.min_us);
        assert!(result.down.fast_fraction > 0.05, "{}", result.down.fast_fraction);
        // Some up-switches are quasi-instantaneous (~1 us).
        assert!(result.up.min_us < 5.0, "fast up min {}", result.up.min_us);
        assert!(result.up.fast_fraction > 0.05, "{}", result.up.fast_fraction);
    }

    #[test]
    fn anomaly_vanishes_with_5ms_waits() {
        let result = run(&Config::anomaly_long_waits(Scale::Quick), 17);
        assert_eq!(result.down.fast_fraction, 0.0, "min {}", result.down.min_us);
        assert_eq!(result.up.fast_fraction, 0.0, "min {}", result.up.min_us);
    }

    #[test]
    fn render_contains_key_lines() {
        let mut cfg = Config::fig3(Scale::Quick);
        cfg.samples = 50;
        let s = render(&run(&cfg, 3));
        assert!(s.contains("Fig. 3"));
        assert!(s.contains("2200 -> 1500 MHz"));
        assert!(s.contains("histogram"));
    }
}
