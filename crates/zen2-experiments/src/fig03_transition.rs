//! Fig. 3 — frequency transition delays, plus the §V-B 2.2↔2.5 GHz
//! anomaly.
//!
//! Methodology (refined from Mazouz et al., as in the paper): the
//! benchmark switches the core frequency and watches a minimal workload's
//! performance until the target level is reached and validated; before
//! the next sample it waits a random time between 0 and 10 ms. Each
//! (initial, target) combination is measured many times; other cores sit
//! at the minimum frequency.

use crate::methodology_bridge::detection_noise_ns;
use crate::report::{compare, Table};
use crate::seeds;
use crate::Scale;
use rand::Rng;
use serde::Serialize;
use zen2_isa::{KernelClass, OperandWeight};
use zen2_sim::methodology::{mean, Histogram};
use zen2_sim::time::{MICROSECOND, MILLISECOND};
use zen2_sim::{SimConfig, System};
use zen2_topology::ThreadId;

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Samples per direction.
    pub samples: usize,
    /// Initial frequency (MHz).
    pub from_mhz: u32,
    /// Target frequency (MHz).
    pub to_mhz: u32,
    /// Maximum random wait between samples, milliseconds.
    pub max_wait_ms: u64,
    /// Minimum random wait between samples, milliseconds.
    pub min_wait_ms: u64,
}

impl Config {
    /// The Fig. 3 configuration (2.2 → 1.5 GHz) at a given scale
    /// (paper: 100 000 samples).
    pub fn fig3(scale: Scale) -> Self {
        Self {
            samples: scale.pick(2_000, 100_000),
            from_mhz: 2200,
            to_mhz: 1500,
            max_wait_ms: 10,
            min_wait_ms: 0,
        }
    }

    /// The §V-B anomaly configuration (2.5 ↔ 2.2 GHz, short waits).
    pub fn anomaly(scale: Scale) -> Self {
        Self {
            samples: scale.pick(2_000, 100_000),
            from_mhz: 2500,
            to_mhz: 2200,
            max_wait_ms: 10,
            min_wait_ms: 0,
        }
    }

    /// The anomaly configuration with ≥5 ms waits (effect must vanish).
    pub fn anomaly_long_waits(scale: Scale) -> Self {
        Self { min_wait_ms: 5, max_wait_ms: 15, ..Self::anomaly(scale) }
    }
}

/// Measured delay distribution for one direction.
#[derive(Debug, Clone, Serialize)]
pub struct DirectionResult {
    /// Transition direction label.
    pub label: String,
    /// All measured delays in microseconds.
    pub delays_us: Vec<f64>,
    /// Minimum delay (µs).
    pub min_us: f64,
    /// Maximum delay (µs).
    pub max_us: f64,
    /// Mean delay (µs).
    pub mean_us: f64,
    /// Fraction of samples that took a fast path (<350 µs for a
    /// down-switch, <5 µs for an up-switch).
    pub fast_fraction: f64,
}

/// Full experiment output.
#[derive(Debug, Clone, Serialize)]
pub struct Fig3Result {
    /// Down-switch (from → to) distribution.
    pub down: DirectionResult,
    /// Up-switch (to → from) distribution.
    pub up: DirectionResult,
    /// Histogram of down-switch delays in 25 µs bins over [0, 1500) µs.
    pub histogram_counts: Vec<u64>,
    /// Coefficient of variation over the uniform plateau bins.
    pub plateau_cv: f64,
}

/// Runs the transition-delay experiment.
pub fn run(cfg: &Config, seed: u64) -> Fig3Result {
    let mut sys = System::new(SimConfig::epyc_7502_2s(), seeds::child(seed, 0));
    let topo = sys.config().topology.clone();
    let min_mhz = sys.config().min_mhz();

    // Other cores: minimum frequency, idle. Measured core: busy loop.
    for t in topo.all_threads().skip(2) {
        sys.set_thread_pstate_mhz(t, min_mhz);
    }
    sys.set_workload(ThreadId(0), KernelClass::BusyWait, OperandWeight::HALF);

    let set_core_freq = |sys: &mut System, mhz: u32| {
        let a = sys.set_thread_pstate_mhz(ThreadId(1), mhz);
        let b = sys.set_thread_pstate_mhz(ThreadId(0), mhz);
        b.or(a)
    };

    // Settle at the initial frequency.
    set_core_freq(&mut sys, cfg.from_mhz);
    sys.run_for_ns(20 * MILLISECOND);

    let mut down_delays = Vec::with_capacity(cfg.samples);
    let mut up_delays = Vec::with_capacity(cfg.samples);

    for _ in 0..cfg.samples {
        // Random wait at the initial frequency.
        let wait = cfg.min_wait_ms * MILLISECOND
            + sys.rng().gen_range(0..=(cfg.max_wait_ms - cfg.min_wait_ms) * 1000) * MICROSECOND;
        sys.run_for_ns(wait);

        // Switch toward the target and time the performance change.
        let t0 = sys.now_ns();
        let pending = set_core_freq(&mut sys, cfg.to_mhz);
        let delay = match pending {
            Some(p) => (p.completes_at - t0) as f64 + detection_noise_ns(sys.rng()),
            None => 0.0,
        };
        down_delays.push(delay / 1000.0);
        sys.run_for_ns(pending.map(|p| p.completes_at - t0).unwrap_or(0) + MICROSECOND);

        // Random wait at the target, then switch back.
        let wait = cfg.min_wait_ms * MILLISECOND
            + sys.rng().gen_range(0..=(cfg.max_wait_ms - cfg.min_wait_ms) * 1000) * MICROSECOND;
        sys.run_for_ns(wait);
        let t1 = sys.now_ns();
        let pending = set_core_freq(&mut sys, cfg.from_mhz);
        let delay = match pending {
            Some(p) => (p.completes_at - t1) as f64 + detection_noise_ns(sys.rng()),
            None => 0.0,
        };
        up_delays.push(delay / 1000.0);
        sys.run_for_ns(pending.map(|p| p.completes_at - t1).unwrap_or(0) + MICROSECOND);
    }

    let mut histogram = Histogram::new(0.0, 1500.0, 60);
    for &d in &down_delays {
        histogram.add(d);
    }
    // The uniform plateau spans bins 16..=54 (400-1375 µs).
    let plateau_cv = histogram.plateau_cv(16, 55);

    let direction = |label: String, delays: &[f64], fast_threshold_us: f64| DirectionResult {
        label,
        min_us: delays.iter().copied().fold(f64::INFINITY, f64::min),
        max_us: delays.iter().copied().fold(0.0, f64::max),
        mean_us: mean(delays),
        fast_fraction: delays.iter().filter(|&&d| d < fast_threshold_us).count() as f64
            / delays.len() as f64,
        delays_us: delays.to_vec(),
    };

    Fig3Result {
        down: direction(
            format!("{} -> {} MHz", cfg.from_mhz, cfg.to_mhz),
            &down_delays,
            350.0,
        ),
        up: direction(format!("{} -> {} MHz", cfg.to_mhz, cfg.from_mhz), &up_delays, 5.0),
        histogram_counts: histogram.counts().to_vec(),
        plateau_cv,
    }
}

/// Renders the paper-style summary.
pub fn render(result: &Fig3Result) -> String {
    let mut t = Table::new(
        "Fig. 3 — frequency transition delays (paper: uniform 390-1390 us for 2.2->1.5 GHz)",
        &["direction", "min [us]", "max [us]", "mean [us]", "fast-path fraction"],
    );
    for d in [&result.down, &result.up] {
        t.row(&[
            d.label.clone(),
            format!("{:.0}", d.min_us),
            format!("{:.0}", d.max_us),
            format!("{:.0}", d.mean_us),
            format!("{:.3}", d.fast_fraction),
        ]);
    }
    let mut out = t.render();
    out.push_str(&format!(
        "plateau uniformity (CV over 400-1375 us bins): {:.3}\n",
        result.plateau_cv
    ));
    out.push_str(&format!(
        "paper vs measured mean (down): {}\n",
        compare(890.0, result.down.mean_us, " us")
    ));
    let mut hist = Table::new("Fig. 3 histogram (25 us bins)", &["bin start [us]", "count"]);
    for (i, &c) in result.histogram_counts.iter().enumerate() {
        hist.row(&[format!("{}", i * 25), format!("{c}")]);
    }
    out.push_str(&hist.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_distribution_is_uniform_390_to_1390() {
        let result = run(&Config::fig3(Scale::Quick), 7);
        assert!(result.down.min_us >= 389.0, "min {}", result.down.min_us);
        assert!(result.down.max_us <= 1393.0, "max {}", result.down.max_us);
        assert!((result.down.mean_us - 890.0).abs() < 25.0, "mean {}", result.down.mean_us);
        // No fast paths for the 2.2<->1.5 pair.
        assert_eq!(result.down.fast_fraction, 0.0);
        assert_eq!(result.up.fast_fraction, 0.0);
        // Roughly uniform plateau.
        assert!(result.plateau_cv < 0.35, "plateau CV {}", result.plateau_cv);
    }

    #[test]
    fn up_switches_are_slightly_faster() {
        let result = run(&Config::fig3(Scale::Quick), 11);
        // 360 us ramp vs 390 us ramp.
        assert!(result.up.min_us >= 359.0 && result.up.min_us < 375.0, "{}", result.up.min_us);
        assert!(result.up.mean_us < result.down.mean_us);
    }

    #[test]
    fn anomaly_appears_for_25_22_with_short_waits() {
        let result = run(&Config::anomaly(Scale::Quick), 13);
        // Down-switches below the 390 us minimum exist (down to ~160 us).
        assert!(result.down.min_us < 250.0, "fast down min {}", result.down.min_us);
        assert!(result.down.fast_fraction > 0.05, "{}", result.down.fast_fraction);
        // Some up-switches are quasi-instantaneous (~1 us).
        assert!(result.up.min_us < 5.0, "fast up min {}", result.up.min_us);
        assert!(result.up.fast_fraction > 0.05, "{}", result.up.fast_fraction);
    }

    #[test]
    fn anomaly_vanishes_with_5ms_waits() {
        let result = run(&Config::anomaly_long_waits(Scale::Quick), 17);
        assert_eq!(result.down.fast_fraction, 0.0, "min {}", result.down.min_us);
        assert_eq!(result.up.fast_fraction, 0.0, "min {}", result.up.min_us);
    }

    #[test]
    fn render_contains_key_lines() {
        let mut cfg = Config::fig3(Scale::Quick);
        cfg.samples = 50;
        let s = render(&run(&cfg, 3));
        assert!(s.contains("Fig. 3"));
        assert!(s.contains("2200 -> 1500 MHz"));
        assert!(s.contains("histogram"));
    }
}
