//! Fig. 8 — C-state transition (wakeup) times.
//!
//! Caller/callee pairs as in Ilsche et al.: the callee idles in
//! `pthread_cond_wait`, the caller signals it. Local pairs share a CCX;
//! remote pairs sit on different sockets. 200 samples per combination of
//! C-state, frequency and placement.
//!
//! Each combination is a declarative [`Scenario`] whose sampling plan is
//! a [`Probe::WakeupSamples`] window; the grid fans out via [`Session`].

use crate::report::Table;
use crate::seeds;
use crate::Scale;
use serde::Serialize;
use zen2_sim::methodology::{mean, quantile};
use zen2_sim::{Case, Probe, Scenario, Session, SimConfig, Window};
use zen2_topology::ThreadId;

/// Paper reference: C1 ≈ 1 µs at 2.2/2.5 GHz, 1.5 µs at 1.5 GHz; C2
/// between 20 µs and 25 µs; remote adds ~1 µs; ACPI reports 1/400 µs.
pub const FREQS_MHZ: [u32; 3] = [1500, 2200, 2500];

/// One measured distribution.
#[derive(Debug, Clone, Serialize)]
pub struct WakeupDist {
    /// OS C-state (1 or 2).
    pub cstate: u8,
    /// Callee core frequency, MHz.
    pub freq_mhz: u32,
    /// Cross-socket pair.
    pub remote: bool,
    /// Median latency, µs.
    pub median_us: f64,
    /// Mean latency, µs.
    pub mean_us: f64,
    /// 95th percentile, µs.
    pub p95_us: f64,
    /// Maximum (outlier) latency, µs.
    pub max_us: f64,
}

/// Full experiment output.
#[derive(Debug, Clone, Serialize)]
pub struct Fig8Result {
    /// All distributions, C1 first.
    pub dists: Vec<WakeupDist>,
}

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Samples per combination (paper: 200).
    pub samples: usize,
}

impl Config {
    /// Scaled configuration.
    pub fn new(scale: Scale) -> Self {
        Self { samples: scale.pick(100, 200) }
    }
}

/// Time between wakeup samples, ns (the benchmark's inter-sample pause).
const SAMPLE_GAP_NS: u64 = 200_000;

/// Builds one combination's scenario: caller busy on core 0, callee idle
/// on core 1 (local) or socket 1 (remote) at the given frequency and
/// C-state, then `samples` cond-var wakeups every 200 µs.
fn scenario(cfg: &Config, cstate: u8, freq_mhz: u32, remote: bool) -> Scenario {
    let caller = ThreadId(0);
    let callee = if remote { ThreadId(64) } else { ThreadId(2) };
    let sibling = ThreadId(callee.0 + 1);

    let mut sc = Scenario::new();
    let at = sc
        .at(0)
        .workload(caller, zen2_isa::KernelClass::BusyWait, zen2_isa::OperandWeight::HALF)
        // Frequency applies to the callee core (both siblings).
        .pstate(callee, freq_mhz)
        .pstate(sibling, freq_mhz);
    if cstate == 1 {
        at.cstate(callee, 2, false);
    }

    let from = zen2_sim::time::from_secs(0.02);
    sc.probe(
        "wakeups",
        Probe::WakeupSamples { caller, callee, count: cfg.samples, gap: SAMPLE_GAP_NS },
        Window::span(from, from + cfg.samples as u64 * SAMPLE_GAP_NS),
    );
    sc
}

/// Runs all combinations as one [`Session`] batch.
pub fn run(cfg: &Config, seed: u64) -> Fig8Result {
    let mut combos = Vec::new();
    for &cstate in &[1u8, 2u8] {
        for &freq in &FREQS_MHZ {
            for &remote in &[false, true] {
                combos.push((cstate, freq, remote));
            }
        }
    }
    let sim_cfg = SimConfig::epyc_7502_2s();
    let cases: Vec<Case> = combos
        .iter()
        .enumerate()
        .map(|(i, &(cstate, freq, remote))| {
            Case::new(
                format!("C{cstate}/{freq}MHz/{}", if remote { "remote" } else { "local" }),
                sim_cfg.clone(),
                scenario(cfg, cstate, freq, remote),
                seeds::child(seed, i as u64),
            )
        })
        .collect();
    let runs = Session::new().run(&cases).expect("fig08 scenarios validate");

    let dists = combos
        .iter()
        .zip(&runs)
        .map(|(&(cstate, freq_mhz, remote), run)| {
            let samples_us: Vec<f64> =
                run.durations_ns("wakeups").iter().map(|ns| ns / 1000.0).collect();
            WakeupDist {
                cstate,
                freq_mhz,
                remote,
                median_us: quantile(&samples_us, 0.5),
                mean_us: mean(&samples_us),
                p95_us: quantile(&samples_us, 0.95),
                max_us: samples_us.iter().copied().fold(0.0, f64::max),
            }
        })
        .collect();
    Fig8Result { dists }
}

/// Renders the paper-style table.
pub fn render(r: &Fig8Result) -> String {
    tables(r).iter().map(Table::render).collect()
}

/// The summary as a [`Table`] (for text, CSV, or JSON output).
pub fn tables(r: &Fig8Result) -> Vec<Table> {
    let mut t = Table::new(
        "Fig. 8 — C-state wakeup latencies (paper: C1 ~1-1.5 us, C2 20-25 us; ACPI reports 1/400 us)",
        &["C-state", "freq [GHz]", "placement", "median [us]", "mean [us]", "p95 [us]", "max [us]"],
    );
    for d in &r.dists {
        t.row(&[
            format!("C{}", d.cstate),
            format!("{:.1}", d.freq_mhz as f64 / 1000.0),
            if d.remote { "remote".into() } else { "local".into() },
            format!("{:.2}", d.median_us),
            format!("{:.2}", d.mean_us),
            format!("{:.2}", d.p95_us),
            format!("{:.2}", d.max_us),
        ]);
    }
    vec![t]
}

/// Finds a distribution.
pub fn find(r: &Fig8Result, cstate: u8, freq_mhz: u32, remote: bool) -> &WakeupDist {
    r.dists
        .iter()
        .find(|d| d.cstate == cstate && d.freq_mhz == freq_mhz && d.remote == remote)
        .expect("combination present")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Config {
        Config { samples: 60 }
    }

    #[test]
    fn c1_latencies_match_fig8a() {
        let r = run(&quick(), 71);
        assert!((find(&r, 1, 2500, false).median_us - 1.0).abs() < 0.15);
        assert!((find(&r, 1, 2200, false).median_us - 1.14).abs() < 0.2);
        assert!((find(&r, 1, 1500, false).median_us - 1.67).abs() < 0.3);
    }

    #[test]
    fn c2_latencies_match_fig8b() {
        let r = run(&quick(), 72);
        for &f in &FREQS_MHZ {
            let d = find(&r, 2, f, false);
            assert!((19.0..27.0).contains(&d.median_us), "C2 @{f}: {}", d.median_us);
        }
        // Far below the ACPI-reported 400 us.
        assert!(find(&r, 2, 2500, false).p95_us < 40.0);
    }

    #[test]
    fn remote_adds_about_one_microsecond() {
        let r = run(&quick(), 73);
        for &c in &[1u8, 2u8] {
            let local = find(&r, c, 2500, false).median_us;
            let remote = find(&r, c, 2500, true).median_us;
            assert!((remote - local - 1.0).abs() < 0.3, "C{c}: {local} vs {remote}");
        }
    }

    #[test]
    fn outliers_exist_but_are_rare() {
        let r = run(&Config { samples: 300 }, 74);
        let d = find(&r, 2, 2500, false);
        assert!(d.max_us > d.median_us, "some samples are perturbed");
        assert!(d.p95_us < d.median_us * 1.3, "but the bulk is tight");
    }
}
