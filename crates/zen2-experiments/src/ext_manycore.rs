//! Extension: the paper's future-work prediction on many-core parts.
//!
//! "As future work, we will analyze the frequency throttling on processors
//! with more cores. We expect a more severe impact, since the ratio of
//! compute to I/O resources is higher." (Section VIII)
//!
//! This experiment runs the Fig. 6 FIRESTARTER methodology on a simulated
//! single-socket EPYC 7742 (64 cores behind one I/O die, 225 W-class PPT)
//! and compares the throttle depth against the EPYC 7502 baseline. The
//! paper publishes no numbers for this — the results here are *model
//! predictions*, clearly labeled as such. The SKU grid is a declarative
//! [`Sweep`] streamed through the [`Session`] worker pool.

use crate::report::Table;
use crate::Scale;
use serde::Serialize;
use zen2_isa::{KernelClass, OperandWeight};
use zen2_sim::checkpoint::{run_resumable, CheckpointState};
use zen2_sim::{
    Axis, Checkpoint, CheckpointError, CheckpointSpec, GroupedStats, Json, Probe, Run, Scenario,
    Session, SimConfig, Snapshot, SnapshotError, Sweep, Window,
};
use zen2_topology::{CoreId, ThreadId};

/// One SKU's throttling result.
#[derive(Debug, Clone, Serialize)]
pub struct SkuResult {
    /// SKU label.
    pub sku: String,
    /// Cores per socket.
    pub cores_per_socket: usize,
    /// Nominal frequency, GHz.
    pub nominal_ghz: f64,
    /// FIRESTARTER (SMT) equilibrium frequency, GHz.
    pub equilibrium_ghz: f64,
    /// Throttle depth relative to nominal (0 = none).
    pub throttle_depth: f64,
    /// RAPL-visible package power at equilibrium, W per socket.
    pub rapl_pkg_w: f64,
    /// Per-core share of the PPT budget at equilibrium, W.
    pub per_core_budget_w: f64,
}

/// Full experiment output.
#[derive(Debug, Clone, Serialize)]
pub struct ManyCoreResult {
    /// The paper's 32-core baseline.
    pub epyc_7502: SkuResult,
    /// The future-work 64-core part.
    pub epyc_7742: SkuResult,
}

/// A SKU's reduced result snapshots exactly (for checkpoint/resume —
/// the [`GroupedStats`] accumulator here is `Option<SkuResult>`).
impl Snapshot for SkuResult {
    fn snapshot(&self) -> Json {
        Json::obj([
            ("sku", Json::str(self.sku.clone())),
            ("cores_per_socket", Json::usize(self.cores_per_socket)),
            ("nominal_ghz", Json::f64(self.nominal_ghz)),
            ("equilibrium_ghz", Json::f64(self.equilibrium_ghz)),
            ("throttle_depth", Json::f64(self.throttle_depth)),
            ("rapl_pkg_w", Json::f64(self.rapl_pkg_w)),
            ("per_core_budget_w", Json::f64(self.per_core_budget_w)),
        ])
    }

    fn restore(json: &Json) -> Result<Self, SnapshotError> {
        Ok(Self {
            sku: json.get("sku")?.as_str()?.to_string(),
            cores_per_socket: json.get("cores_per_socket")?.as_usize()?,
            nominal_ghz: json.get("nominal_ghz")?.as_f64()?,
            equilibrium_ghz: json.get("equilibrium_ghz")?.as_f64()?,
            throttle_depth: json.get("throttle_depth")?.as_f64()?,
            rapl_pkg_w: json.get("rapl_pkg_w")?.as_f64()?,
            per_core_budget_w: json.get("per_core_budget_w")?.as_f64()?,
        })
    }
}

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Settling/measurement time per SKU, seconds.
    pub duration_s: f64,
}

impl Config {
    /// Scaled configuration.
    pub fn new(scale: Scale) -> Self {
        Self { duration_s: scale.pick(0.5, 10.0) }
    }
}

/// Builds one SKU's scenario: FIRESTARTER on every hardware thread, the
/// paper's pre-heat partway through the settle, then the equilibrium
/// frequency and a trailing RAPL window.
pub fn sku_scenario(cfg: &Config, sim_cfg: &SimConfig) -> Scenario {
    let threads = sim_cfg.topology.num_threads() as u32;
    let mut sc = Scenario::new();
    let mut at = sc.at(0);
    for t in 0..threads {
        at = at.workload(ThreadId(t), KernelClass::Firestarter, OperandWeight::HALF);
    }
    sc.at_secs(cfg.duration_s * 0.4).preheat();
    sc.probe("ghz", Probe::EffectiveGhz(CoreId(0)), Window::at_secs(cfg.duration_s));
    sc.probe("rapl", Probe::RaplW, Window::span_secs(cfg.duration_s, cfg.duration_s + 0.3));
    sc
}

/// Reduces one SKU's [`Run`].
fn reduce(sim_cfg: &SimConfig, sku: &str, run: &Run) -> SkuResult {
    let nominal_ghz = sim_cfg.nominal_mhz() as f64 / 1000.0;
    let cores_per_socket = sim_cfg.topology.cores_per_socket();
    let sockets = sim_cfg.topology.num_sockets();
    let equilibrium_ghz = run.ghz("ghz");
    let (rapl_pkg_sum, _) = run.watts_pair("rapl");
    let rapl_pkg_w = rapl_pkg_sum / sockets as f64;
    SkuResult {
        sku: sku.into(),
        cores_per_socket,
        nominal_ghz,
        equilibrium_ghz,
        throttle_depth: 1.0 - equilibrium_ghz / nominal_ghz,
        rapl_pkg_w,
        per_core_budget_w: rapl_pkg_w / cores_per_socket as f64,
    }
}

/// The SKU grid as a declarative [`Sweep`]: one axis swapping both the
/// machine configuration and its matching scenario.
pub fn sweep(cfg: &Config, seed: u64) -> Sweep {
    let skus = [SimConfig::epyc_7502_2s(), SimConfig::epyc_7742_1s()];
    let mut axis = Axis::new("sku");
    for (label, sim_cfg) in ["EPYC 7502", "EPYC 7742"].into_iter().zip(skus) {
        let scenario = sku_scenario(cfg, &sim_cfg);
        axis = axis.with(label, move |draft| {
            draft.config = sim_cfg.clone();
            draft.scenario = scenario.clone();
        });
    }
    Sweep::new("manycore", SimConfig::epyc_7502_2s()).seed(seed).axis(axis)
}

/// Runs both SKUs through the streaming sweep engine.
pub fn run(cfg: &Config, seed: u64) -> ManyCoreResult {
    run_checkpointed(cfg, seed, &Session::new(), &CheckpointSpec::none())
        .expect("checkpointing disabled")
        .expect("no halt configured")
}

/// [`run`] with checkpoint/resume: persists the per-SKU reductions at
/// every shard boundary per `spec` and resumes byte-identically.
/// Returns `None` on a deliberate `--halt-after` halt.
///
/// # Errors
/// Errors when the checkpoint cannot be read, written, or does not
/// belong to this grid.
pub fn run_checkpointed(
    cfg: &Config,
    seed: u64,
    session: &Session,
    spec: &CheckpointSpec,
) -> Result<Option<ManyCoreResult>, CheckpointError> {
    let sweep = sweep(cfg, seed);
    /// The resumable accumulator: one reduced result per SKU.
    struct Skus(GroupedStats<Option<SkuResult>>);
    impl CheckpointState for Skus {
        fn save_into(&self, checkpoint: &mut Checkpoint) {
            checkpoint.set_grouped("skus", &self.0);
        }
        fn restore_from(&mut self, checkpoint: &Checkpoint) -> Result<(), CheckpointError> {
            self.0 = checkpoint.grouped("skus", &self.0)?;
            Ok(())
        }
        fn fold(&mut self, index: usize, run: Run) {
            let (sim_cfg, label) = match index {
                0 => (SimConfig::epyc_7502_2s(), "EPYC 7502"),
                _ => (SimConfig::epyc_7742_1s(), "EPYC 7742"),
            };
            *self.0.entry(index) = Some(reduce(&sim_cfg, label, &run));
        }
    }
    let mut state = Skus(GroupedStats::new(&sweep, &["sku"]));
    if !run_resumable(&sweep, vec![], session, spec, &mut state)? {
        return Ok(None);
    }
    let sku = |label| state.0.get(&[label]).and_then(Clone::clone).expect("both SKUs streamed");
    Ok(Some(ManyCoreResult { epyc_7502: sku("EPYC 7502"), epyc_7742: sku("EPYC 7742") }))
}

/// Renders the prediction table.
pub fn render(r: &ManyCoreResult) -> String {
    let t = table(r);
    let mut out = t.render();
    out.push_str(&format!(
        "prediction: the 64-core part throttles {:.1}x deeper than the 32-core part\n",
        r.epyc_7742.throttle_depth / r.epyc_7502.throttle_depth
    ));
    out
}

/// [`table`] in the uniform multi-table shape every binary emits.
pub fn tables(r: &ManyCoreResult) -> Vec<Table> {
    vec![table(r)]
}

/// The summary as a [`Table`] (for text, CSV, or JSON output).
pub fn table(r: &ManyCoreResult) -> Table {
    let mut t = Table::new(
        "Extension — many-core throttling prediction (paper SS VIII future work; \
         7742 numbers are model predictions, not paper measurements)",
        &[
            "SKU",
            "cores",
            "nominal [GHz]",
            "FIRESTARTER eq. [GHz]",
            "throttle depth",
            "W/core budget",
        ],
    );
    for s in [&r.epyc_7502, &r.epyc_7742] {
        t.row(&[
            s.sku.clone(),
            format!("{}", s.cores_per_socket),
            format!("{:.2}", s.nominal_ghz),
            format!("{:.3}", s.equilibrium_ghz),
            format!("{:.1}%", s.throttle_depth * 100.0),
            format!("{:.2}", s.per_core_budget_w),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Config {
        Config { duration_s: 0.4 }
    }

    #[test]
    fn sweep_engine_matches_materialized_session() {
        // The sweep port must not change results: the same cases built
        // by hand (as the module did before the sweep engine) and run
        // materialized produce byte-identical paper-comparison output.
        use zen2_sim::{sweep::child_seed, Case};
        let cfg = quick();
        let seed = 131;
        let cfg_7502 = SimConfig::epyc_7502_2s();
        let cfg_7742 = SimConfig::epyc_7742_1s();
        let cases = vec![
            Case::new(
                "EPYC 7502",
                cfg_7502.clone(),
                sku_scenario(&cfg, &cfg_7502),
                child_seed(seed, 0),
            ),
            Case::new(
                "EPYC 7742",
                cfg_7742.clone(),
                sku_scenario(&cfg, &cfg_7742),
                child_seed(seed, 1),
            ),
        ];
        let runs = Session::new().run(&cases).unwrap();
        let materialized = ManyCoreResult {
            epyc_7502: reduce(&cfg_7502, "EPYC 7502", &runs[0]),
            epyc_7742: reduce(&cfg_7742, "EPYC 7742", &runs[1]),
        };
        assert_eq!(render(&run(&cfg, seed)), render(&materialized));
        assert_eq!(table(&run(&cfg, seed)).to_json(), table(&materialized).to_json());
    }

    #[test]
    fn many_core_part_throttles_deeper() {
        // The paper's expectation: "a more severe impact".
        let r = run(&quick(), 131);
        assert!(
            r.epyc_7742.throttle_depth > r.epyc_7502.throttle_depth + 0.02,
            "7742 {:.3} vs 7502 {:.3}",
            r.epyc_7742.throttle_depth,
            r.epyc_7502.throttle_depth
        );
    }

    #[test]
    fn per_core_budget_shrinks_with_core_count() {
        let r = run(&quick(), 132);
        assert!(r.epyc_7742.per_core_budget_w < r.epyc_7502.per_core_budget_w);
        // Both stay regulated near their PPT targets.
        assert!((r.epyc_7502.rapl_pkg_w - 170.0).abs() < 8.0);
        assert!((r.epyc_7742.rapl_pkg_w - 212.0).abs() < 10.0);
    }

    #[test]
    fn baseline_matches_fig6() {
        let r = run(&quick(), 133);
        assert!((r.epyc_7502.equilibrium_ghz - 2.03).abs() < 0.05);
    }

    #[test]
    fn render_labels_the_prediction() {
        let s = render(&run(&quick(), 134));
        assert!(s.contains("model predictions"));
        assert!(s.contains("EPYC 7742"));
    }
}
