//! Deterministic seed derivation for parallel sweeps.
//!
//! Each configuration in a fan-out gets `child(root, index)`, so results
//! are independent of thread scheduling and stable across runs.

/// SplitMix64 step — the standard seed-sequence generator.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The `index`-th child seed of a root seed.
pub fn child(root: u64, index: u64) -> u64 {
    let mut state = root ^ index.wrapping_mul(0xA24B_AED4_963E_E407);
    let mut out = splitmix64(&mut state);
    // One extra round decorrelates adjacent indices thoroughly.
    out ^= splitmix64(&mut state);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn children_are_deterministic_and_distinct() {
        let a: Vec<u64> = (0..100).map(|i| child(42, i)).collect();
        let b: Vec<u64> = (0..100).map(|i| child(42, i)).collect();
        assert_eq!(a, b);
        let unique: HashSet<_> = a.iter().collect();
        assert_eq!(unique.len(), 100);
    }

    #[test]
    fn different_roots_diverge() {
        assert_ne!(child(1, 0), child(2, 0));
        assert_ne!(child(1, 5), child(1, 6));
    }
}
