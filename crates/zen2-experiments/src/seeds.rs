//! Deterministic seed derivation for parallel sweeps.
//!
//! Each configuration in a fan-out gets `child(root, index)`, so results
//! are independent of thread scheduling and stable across runs. The
//! derivation is [`zen2_sim::sweep::child_seed`] — the same one the
//! sweep engine uses by default — so a hand-built fan-out and a
//! [`Sweep`](zen2_sim::Sweep) over the same root produce the same seeds.

/// The `index`-th child seed of a root seed.
pub fn child(root: u64, index: u64) -> u64 {
    zen2_sim::sweep::child_seed(root, index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn children_are_deterministic_and_distinct() {
        let a: Vec<u64> = (0..100).map(|i| child(42, i)).collect();
        let b: Vec<u64> = (0..100).map(|i| child(42, i)).collect();
        assert_eq!(a, b);
        // zen2-lint: allow(no-unordered-iteration) — cardinality-only uniqueness check; never iterated
        let unique: HashSet<_> = a.iter().collect();
        assert_eq!(unique.len(), 100);
    }

    #[test]
    fn different_roots_diverge() {
        assert_ne!(child(1, 0), child(2, 0));
        assert_ne!(child(1, 5), child(1, 6));
    }
}
