//! Table I — applied mean core frequencies in a mixed-frequency setup on
//! one CCX.
//!
//! "We run a simple workload (`while(1);`) on all cores of a CCX and
//! measure the frequency of one core, which is configured differently
//! than other cores. We monitor each setup for 120 s and capture the
//! frequency every second via perf stat."
//!
//! Each cell is a declarative [`Scenario`] — the CCX placement as steps
//! and the perf-stat readout as a [`Probe::CounterSeries`] — and the 3×3
//! matrix is a two-axis [`Sweep`] streamed through the [`Session`]
//! worker pool.

use crate::report::Table;
use crate::Scale;
use serde::Serialize;
use zen2_isa::{KernelClass, OperandWeight};
use zen2_sim::checkpoint::{run_resumable, CheckpointState};
use zen2_sim::perf::ThreadCounters;
use zen2_sim::time::{from_secs, Ns, MILLISECOND};
use zen2_sim::{
    Axis, Checkpoint, CheckpointError, CheckpointSpec, GroupedStats, OnlineStats, Probe, Run,
    Scenario, Session, SimConfig, Sweep, Window,
};
use zen2_topology::ThreadId;

/// The swept frequencies (GHz ×1000), in the paper's order.
pub const FREQS_MHZ: [u32; 3] = [1500, 2200, 2500];

/// Paper Table I reference values (GHz): rows = set frequency of the
/// measured core, columns = set frequency of the other cores.
pub const PAPER_GHZ: [[f64; 3]; 3] =
    [[1.499, 1.466, 1.428], [2.200, 2.199, 2.000], [2.497, 2.499, 2.499]];

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Measurement duration per cell in seconds (paper: 120 s).
    pub duration_s: f64,
    /// Sampling interval for the perf-stat style frequency readout.
    pub sample_interval_s: f64,
}

impl Config {
    /// Scaled configuration.
    pub fn new(scale: Scale) -> Self {
        Self { duration_s: scale.pick(1.0, 120.0), sample_interval_s: scale.pick(0.1, 1.0) }
    }
}

/// Measured matrix.
#[derive(Debug, Clone, Serialize)]
pub struct Tab1Result {
    /// Mean applied frequency (GHz) per (measured-set, others-set) cell.
    pub measured_ghz: [[f64; 3]; 3],
    /// Worst relative deviation from the paper's Table I.
    pub worst_rel_err: f64,
}

/// DVFS settle time before sampling starts.
const SETTLE_NS: Ns = 20 * MILLISECOND;

/// Builds one cell's scenario: the measured core set to `set_mhz`, the
/// other three CCX cores to `others_mhz`, all running `while(1);`, with
/// the perf-stat frequency readout as a counter series.
pub fn cell_scenario(cfg: &Config, set_mhz: u32, others_mhz: u32) -> Scenario {
    let mut sc = Scenario::new();
    let mut at = sc.at(0);
    for t in 0..8u32 {
        let mhz = if t < 2 { set_mhz } else { others_mhz };
        at = at
            .workload(ThreadId(t), KernelClass::BusyWait, OperandWeight::HALF)
            .pstate(ThreadId(t), mhz);
    }
    let samples = (cfg.duration_s / cfg.sample_interval_s).round() as u64;
    let every = from_secs(cfg.sample_interval_s);
    sc.probe(
        "freq",
        Probe::CounterSeries { thread: ThreadId(0), every },
        Window::span(SETTLE_NS, SETTLE_NS + samples * every),
    );
    sc
}

/// Reduces one cell's [`Run`]: mean effective frequency over the
/// per-interval counter deltas.
fn reduce(run: &Run) -> f64 {
    let snaps = run.counter_series("freq");
    let means: Vec<f64> =
        snaps.windows(2).map(|w| ThreadCounters::effective_ghz(&w[0], &w[1], 2.5)).collect();
    zen2_sim::methodology::mean(&means)
}

/// The 3×3 matrix as a declarative [`Sweep`]: one parameter axis per
/// Table I dimension (measured core's set frequency outermost, like the
/// paper's rows), with the joint cell scenario built in the finish hook.
pub fn sweep(cfg: &Config, seed: u64) -> Sweep {
    let freqs = FREQS_MHZ.map(|mhz| mhz as f64);
    let cfg = cfg.clone();
    Sweep::new("tab1", SimConfig::epyc_7502_2s())
        .seed(seed)
        .axis(Axis::param("set", freqs))
        .axis(Axis::param("others", freqs))
        .finish(move |draft| {
            draft.scenario =
                cell_scenario(&cfg, draft.param("set") as u32, draft.param("others") as u32);
        })
}

/// Runs the full 3×3 matrix through the streaming sweep engine.
pub fn run(cfg: &Config, seed: u64) -> Tab1Result {
    run_checkpointed(cfg, seed, &Session::new(), &CheckpointSpec::none())
        .expect("checkpointing disabled")
        .expect("no halt configured")
}

/// [`run`] with checkpoint/resume: persists the per-cell reductions at
/// every shard boundary per `spec` and resumes byte-identically (the
/// mean of a cell's single observation is that observation, exactly).
/// Returns `None` on a deliberate `--halt-after` halt.
///
/// # Errors
/// Errors when the checkpoint cannot be read, written, or does not
/// belong to this grid.
pub fn run_checkpointed(
    cfg: &Config,
    seed: u64,
    session: &Session,
    spec: &CheckpointSpec,
) -> Result<Option<Tab1Result>, CheckpointError> {
    let sweep = sweep(cfg, seed);
    /// The resumable accumulator: one frequency reduction per cell.
    struct Cells(GroupedStats<OnlineStats>);
    impl CheckpointState for Cells {
        fn save_into(&self, checkpoint: &mut Checkpoint) {
            checkpoint.set_grouped("cells", &self.0);
        }
        fn restore_from(&mut self, checkpoint: &Checkpoint) -> Result<(), CheckpointError> {
            self.0 = checkpoint.grouped("cells", &self.0)?;
            Ok(())
        }
        fn fold(&mut self, index: usize, run: Run) {
            self.0.entry(index).push(reduce(&run));
        }
    }
    let mut state = Cells(GroupedStats::new(&sweep, &["set", "others"]));
    if !run_resumable(&sweep, vec![], session, spec, &mut state)? {
        return Ok(None);
    }
    let mut measured = [[0.0; 3]; 3];
    for (flat, (_, cell)) in state.0.rows().enumerate() {
        measured[flat / 3][flat % 3] = cell.mean();
    }
    let mut worst = 0.0f64;
    for (row, paper_row) in measured.iter().zip(&PAPER_GHZ) {
        for (&cell, &paper) in row.iter().zip(paper_row) {
            worst = worst.max((cell - paper).abs() / paper);
        }
    }
    Ok(Some(Tab1Result { measured_ghz: measured, worst_rel_err: worst }))
}

/// Renders the paper-style table (paper value / measured value per cell).
pub fn render(result: &Tab1Result) -> String {
    let mut out = table(result).render();
    out.push_str(&format!("worst relative deviation: {:.2}%\n", result.worst_rel_err * 100.0));
    out
}

/// [`table`] in the uniform multi-table shape every binary emits.
pub fn tables(result: &Tab1Result) -> Vec<Table> {
    vec![table(result)]
}

/// The summary as a [`Table`] (for text, CSV, or JSON output).
pub fn table(result: &Tab1Result) -> Table {
    let mut t = Table::new(
        "Table I — applied mean core frequencies [GHz], paper / measured",
        &["set freq \\ others", "1.5 GHz", "2.2 GHz", "2.5 GHz"],
    );
    for (i, &set) in FREQS_MHZ.iter().enumerate() {
        let mut row = vec![format!("{:.1} GHz", set as f64 / 1000.0)];
        for (&paper, &measured) in PAPER_GHZ[i].iter().zip(&result.measured_ghz[i]) {
            row.push(format!("{paper:.3} / {measured:.3}"));
        }
        t.row(&row);
    }
    t
}

/// The mesh-coupling observation in one number: how much a 2.2 GHz core
/// loses under a 2.5 GHz neighbor.
pub fn coupling_penalty_ghz(result: &Tab1Result) -> f64 {
    result.measured_ghz[1][1] - result.measured_ghz[1][2]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Config {
        Config { duration_s: 0.3, sample_interval_s: 0.1 }
    }

    #[test]
    fn sweep_engine_matches_materialized_session() {
        // The sweep port must not change results: the 3×3 grid built by
        // hand (as the module did before the sweep engine) and run
        // materialized produces a byte-identical Table I rendering.
        use zen2_sim::{sweep::child_seed, Case};
        let cfg = quick();
        let seed = 21;
        let mut cases = Vec::new();
        for (i, &set) in FREQS_MHZ.iter().enumerate() {
            for (j, &others) in FREQS_MHZ.iter().enumerate() {
                cases.push(Case::new(
                    format!("set{set}-others{others}"),
                    SimConfig::epyc_7502_2s(),
                    cell_scenario(&cfg, set, others),
                    child_seed(seed, (i * 3 + j) as u64),
                ));
            }
        }
        let runs = Session::new().run(&cases).unwrap();
        let mut measured = [[0.0; 3]; 3];
        for (flat, r) in runs.iter().enumerate() {
            measured[flat / 3][flat % 3] = reduce(r);
        }
        let streamed = run(&cfg, seed);
        assert_eq!(streamed.measured_ghz, measured);
        let mut worst = 0.0f64;
        for (row, paper_row) in measured.iter().zip(&PAPER_GHZ) {
            for (&cell, &paper) in row.iter().zip(paper_row) {
                worst = worst.max((cell - paper).abs() / paper);
            }
        }
        let materialized = Tab1Result { measured_ghz: measured, worst_rel_err: worst };
        assert_eq!(render(&streamed), render(&materialized));
    }

    #[test]
    fn matrix_matches_table1_within_one_percent() {
        let result = run(&quick(), 21);
        assert!(result.worst_rel_err < 0.01, "worst {:.3}%", result.worst_rel_err * 100.0);
    }

    #[test]
    fn severe_penalty_for_22_under_25_neighbors() {
        let result = run(&quick(), 22);
        // Paper: 200 MHz loss.
        let penalty = coupling_penalty_ghz(&result);
        assert!((penalty - 0.2).abs() < 0.01, "penalty {penalty:.3} GHz");
    }

    #[test]
    fn diagonal_is_unperturbed() {
        let result = run(&quick(), 23);
        for (i, &mhz) in FREQS_MHZ.iter().enumerate() {
            let set = mhz as f64 / 1000.0;
            assert!((result.measured_ghz[i][i] - set).abs() < 0.005);
        }
    }

    #[test]
    fn render_shows_highlighted_cells() {
        let s = render(&run(&quick(), 24));
        assert!(s.contains("Table I"));
        assert!(s.contains("2.000") || s.contains("1.999"));
    }
}
