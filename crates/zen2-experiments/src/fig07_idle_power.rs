//! Fig. 7 — full-system AC power for different idle-state combinations.
//!
//! Three sweeps over the number of threads *not* in C2, applied "following
//! the logical CPU numbering in steps of single CPUs":
//!
//! * **C1** — C2 disabled on the first *n* logical CPUs;
//! * **active (pause)** — an unrolled pause loop pinned to the first *n*
//!   logical CPUs, at 1.5 / 2.2 / 2.5 GHz;
//! * the all-C2 baseline.
//!
//! Every configuration is one declarative [`Scenario`]; the whole sweep is
//! a single [`Session`] batch.

use crate::report::{compare, Table};
use crate::seeds;
use crate::Scale;
use serde::Serialize;
use zen2_isa::{KernelClass, OperandWeight};
use zen2_sim::{Case, Probe, Scenario, Session, SimConfig, Window};
use zen2_topology::{CpuNumbering, LogicalCpu, ThreadId};

/// Paper reference points.
pub mod paper {
    /// All threads in C2.
    pub const ALL_C2_W: f64 = 99.1;
    /// One core in C1 (the package wake step): 99.1 + 81.2.
    pub const FIRST_C1_W: f64 = 180.3;
    /// Each additional C1 core.
    pub const PER_C1_CORE_W: f64 = 0.09;
    /// One active pause thread, others C2.
    pub const FIRST_ACTIVE_W: f64 = 180.4;
    /// Each additional active core at 2.5 GHz.
    pub const PER_ACTIVE_CORE_W: f64 = 0.33;
    /// Each additional active sibling thread at 2.5 GHz.
    pub const PER_ACTIVE_THREAD_W: f64 = 0.05;
}

/// Which idle sweep a curve belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum SweepKind {
    /// Threads moved from C2 to C1.
    C1,
    /// Threads running the unrolled pause loop at a frequency (MHz).
    ActivePause(u32),
}

/// One measured curve.
#[derive(Debug, Clone, Serialize)]
pub struct Curve {
    /// The sweep this curve belongs to.
    pub kind: SweepKind,
    /// The swept thread counts.
    pub thread_counts: Vec<usize>,
    /// Mean AC power at each count, W.
    pub ac_w: Vec<f64>,
}

/// Full experiment output.
#[derive(Debug, Clone, Serialize)]
pub struct Fig7Result {
    /// The all-C2 baseline, W.
    pub baseline_w: f64,
    /// All sweeps.
    pub curves: Vec<Curve>,
}

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Measurement time per configuration, seconds (paper: 10 s).
    pub duration_s: f64,
    /// Thread counts to sweep (paper: every count 1..=128).
    pub thread_counts: Vec<usize>,
    /// Frequencies for the active sweep, MHz.
    pub freqs_mhz: Vec<u32>,
}

impl Config {
    /// Scaled configuration.
    pub fn new(scale: Scale) -> Self {
        Self {
            duration_s: scale.pick(0.4, 10.0),
            thread_counts: match scale {
                Scale::Quick => vec![1, 2, 4, 16, 32, 64, 65, 96, 128],
                Scale::Paper => (1..=128).collect(),
            },
            freqs_mhz: vec![1500, 2200, 2500],
        }
    }
}

/// The AC-power measurement label shared by every case.
const AC: &str = "ac";

/// Builds the declarative scenario for one sweep configuration:
/// `n_threads` logical CPUs leave C2 at t = 0, the machine settles for
/// 50 ms, and mean AC power is observed over the next `duration_s`.
fn scenario(
    cfg: &Config,
    numbering: &CpuNumbering,
    kind: Option<SweepKind>,
    n_threads: usize,
) -> Scenario {
    let mut sc = Scenario::new();
    if let Some(kind) = kind {
        let mut at = sc.at(0);
        for cpu_idx in 0..n_threads {
            let thread = numbering.thread_of(LogicalCpu(cpu_idx as u32));
            at = match kind {
                SweepKind::C1 => at.cstate(thread, 2, false),
                SweepKind::ActivePause(mhz) => at
                    // Both siblings' requests must drop or the idle
                    // sibling's nominal request pins the core (the
                    // Section V-A rule).
                    .pstate(thread, mhz)
                    .pstate(ThreadId(thread.0 ^ 1), mhz)
                    .workload(thread, KernelClass::Pause, OperandWeight::HALF),
            };
        }
    }
    sc.probe(AC, Probe::AcTrueMeanW, Window::span_secs(0.05, 0.05 + cfg.duration_s));
    sc
}

/// Runs all sweeps as one parallel [`Session`] batch.
pub fn run(cfg: &Config, seed: u64) -> Fig7Result {
    let sim_cfg = SimConfig::epyc_7502_2s();
    let numbering = CpuNumbering::linux_default(&sim_cfg.topology);

    let mut kinds = vec![SweepKind::C1];
    kinds.extend(cfg.freqs_mhz.iter().map(|&f| SweepKind::ActivePause(f)));

    let mut cases = vec![Case::new(
        "baseline",
        sim_cfg.clone(),
        scenario(cfg, &numbering, None, 0),
        seeds::child(seed, 999),
    )];
    for (ki, &kind) in kinds.iter().enumerate() {
        for (ci, &count) in cfg.thread_counts.iter().enumerate() {
            cases.push(Case::new(
                format!("{kind:?}/{count}"),
                sim_cfg.clone(),
                scenario(cfg, &numbering, Some(kind), count),
                seeds::child(seed, (ki * 1000 + ci) as u64),
            ));
        }
    }

    let runs = Session::new().run(&cases).expect("fig07 scenarios validate");
    let baseline_w = runs[0].watts(AC);
    let mut curves = Vec::new();
    let mut next = 1;
    for &kind in &kinds {
        let ac_w: Vec<f64> =
            runs[next..next + cfg.thread_counts.len()].iter().map(|r| r.watts(AC)).collect();
        next += cfg.thread_counts.len();
        curves.push(Curve { kind, thread_counts: cfg.thread_counts.clone(), ac_w });
    }
    Fig7Result { baseline_w, curves }
}

/// Derived staircase parameters from a C1 curve.
pub fn c1_staircase(result: &Fig7Result) -> (f64, f64) {
    let c1 = result.curves.iter().find(|c| c.kind == SweepKind::C1).expect("C1 curve present");
    let first = c1.ac_w[0];
    // Slope per additional core over the first-socket portion.
    let idx64 = c1.thread_counts.iter().position(|&n| n == 64).expect("64-thread point");
    let slope = (c1.ac_w[idx64] - c1.ac_w[0]) / (c1.thread_counts[idx64] - 1) as f64;
    (first, slope)
}

/// Renders the summary and curves.
pub fn render(result: &Fig7Result) -> String {
    let mut t = Table::new(
        "Fig. 7 — idle-state power staircase, paper / measured",
        &["quantity", "paper / measured"],
    );
    t.row(&["all threads C2 [W]".into(), compare(paper::ALL_C2_W, result.baseline_w, "")]);
    let (first_c1, slope_c1) = c1_staircase(result);
    t.row(&["first core in C1 [W]".into(), compare(paper::FIRST_C1_W, first_c1, "")]);
    t.row(&[
        "per additional C1 core [W]".into(),
        format!("{:.2} / {:.3}", paper::PER_C1_CORE_W, slope_c1),
    ]);
    if let Some(active) = result.curves.iter().find(|c| c.kind == SweepKind::ActivePause(2500)) {
        t.row(&[
            "first active thread [W]".into(),
            compare(paper::FIRST_ACTIVE_W, active.ac_w[0], ""),
        ]);
    }
    let mut out = t.render();
    let mut curves = Table::new(
        "Fig. 7 curves — AC power [W] vs threads not in C2",
        &["threads", "C1", "pause@1.5GHz", "pause@2.2GHz", "pause@2.5GHz"],
    );
    for (i, &n) in result.curves[0].thread_counts.iter().enumerate() {
        let mut row = vec![format!("{n}")];
        for c in &result.curves {
            row.push(format!("{:.1}", c.ac_w[i]));
        }
        curves.row(&row);
    }
    out.push_str(&curves.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Config {
        Config {
            duration_s: 0.2,
            thread_counts: vec![1, 2, 4, 64, 65, 128],
            freqs_mhz: vec![1500, 2500],
        }
    }

    #[test]
    fn baseline_and_first_step_match_paper() {
        let r = run(&quick(), 61);
        assert!((r.baseline_w - paper::ALL_C2_W).abs() < 1.5, "baseline {}", r.baseline_w);
        let (first_c1, slope) = c1_staircase(&r);
        assert!((first_c1 - paper::FIRST_C1_W).abs() < 2.0, "first C1 {first_c1}");
        assert!((slope - paper::PER_C1_CORE_W).abs() < 0.02, "slope {slope}");
    }

    #[test]
    fn second_hardware_threads_add_nothing_in_c1() {
        let r = run(&quick(), 62);
        let c1 = &r.curves[0];
        let at_64 = c1.ac_w[c1.thread_counts.iter().position(|&n| n == 64).unwrap()];
        let at_128 = c1.ac_w[c1.thread_counts.iter().position(|&n| n == 128).unwrap()];
        assert!((at_128 - at_64).abs() < 0.5, "siblings add {:.2} W", at_128 - at_64);
    }

    #[test]
    fn active_power_depends_on_frequency_c1_does_not() {
        let r = run(&quick(), 63);
        let slope = |kind: SweepKind| {
            let c = r.curves.iter().find(|c| c.kind == kind).unwrap();
            let i1 = c.thread_counts.iter().position(|&n| n == 1).unwrap();
            let i64 = c.thread_counts.iter().position(|&n| n == 64).unwrap();
            (c.ac_w[i64] - c.ac_w[i1]) / 63.0
        };
        let slow = slope(SweepKind::ActivePause(1500));
        let fast = slope(SweepKind::ActivePause(2500));
        assert!(fast > 1.5 * slow, "active slope must scale with f*V^2: {slow} vs {fast}");
        assert!((fast - paper::PER_ACTIVE_CORE_W).abs() < 0.05, "fast slope {fast}");
    }

    #[test]
    fn first_active_thread_matches_first_c1_level() {
        // Paper: 180.4 W vs 180.3 W — the package wake dominates.
        let r = run(&quick(), 64);
        let active = r.curves.iter().find(|c| c.kind == SweepKind::ActivePause(2500)).unwrap();
        let (first_c1, _) = c1_staircase(&r);
        assert!((active.ac_w[0] - first_c1).abs() < 1.0);
    }
}
