//! Fig. 7 — full-system AC power for different idle-state combinations.
//!
//! Three sweeps over the number of threads *not* in C2, applied "following
//! the logical CPU numbering in steps of single CPUs":
//!
//! * **C1** — C2 disabled on the first *n* logical CPUs;
//! * **active (pause)** — an unrolled pause loop pinned to the first *n*
//!   logical CPUs, at 1.5 / 2.2 / 2.5 GHz;
//! * the all-C2 baseline.
//!
//! Every configuration is one declarative [`Scenario`]; the whole grid is
//! a two-axis [`Sweep`] (sweep kind × thread count) streamed through the
//! [`Session`] worker pool, with the curves folded out of a
//! [`GroupedStats`] bucket keyed by both axes. [`run_checkpointed`]
//! persists that bucket (and the all-C2 baseline) at every shard
//! boundary for the `--checkpoint` / `--resume` workflow of
//! `docs/SWEEPS.md`.

use crate::report::{compare, Table};
use crate::seeds;
use crate::Scale;
use serde::Serialize;
use zen2_isa::{KernelClass, OperandWeight};
use zen2_sim::checkpoint::{run_resumable, CheckpointState};
use zen2_sim::{
    Axis, Checkpoint, CheckpointError, CheckpointSpec, GroupedStats, OnlineStats, Probe, Run,
    Scenario, Session, SimConfig, Sweep, Window,
};
use zen2_topology::{CpuNumbering, LogicalCpu, ThreadId};

/// Paper reference points.
pub mod paper {
    /// All threads in C2.
    pub const ALL_C2_W: f64 = 99.1;
    /// One core in C1 (the package wake step): 99.1 + 81.2.
    pub const FIRST_C1_W: f64 = 180.3;
    /// Each additional C1 core.
    pub const PER_C1_CORE_W: f64 = 0.09;
    /// One active pause thread, others C2.
    pub const FIRST_ACTIVE_W: f64 = 180.4;
    /// Each additional active core at 2.5 GHz.
    pub const PER_ACTIVE_CORE_W: f64 = 0.33;
    /// Each additional active sibling thread at 2.5 GHz.
    pub const PER_ACTIVE_THREAD_W: f64 = 0.05;
}

/// Which idle sweep a curve belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum SweepKind {
    /// Threads moved from C2 to C1.
    C1,
    /// Threads running the unrolled pause loop at a frequency (MHz).
    ActivePause(u32),
}

/// One measured curve.
#[derive(Debug, Clone, Serialize)]
pub struct Curve {
    /// The sweep this curve belongs to.
    pub kind: SweepKind,
    /// The swept thread counts.
    pub thread_counts: Vec<usize>,
    /// Mean AC power at each count, W.
    pub ac_w: Vec<f64>,
}

/// Full experiment output.
#[derive(Debug, Clone, Serialize)]
pub struct Fig7Result {
    /// The all-C2 baseline, W.
    pub baseline_w: f64,
    /// All sweeps.
    pub curves: Vec<Curve>,
}

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Measurement time per configuration, seconds (paper: 10 s).
    pub duration_s: f64,
    /// Thread counts to sweep (paper: every count 1..=128).
    pub thread_counts: Vec<usize>,
    /// Frequencies for the active sweep, MHz.
    pub freqs_mhz: Vec<u32>,
}

impl Config {
    /// Scaled configuration.
    pub fn new(scale: Scale) -> Self {
        Self {
            duration_s: scale.pick(0.4, 10.0),
            thread_counts: match scale {
                Scale::Quick => vec![1, 2, 4, 16, 32, 64, 65, 96, 128],
                Scale::Paper => (1..=128).collect(),
            },
            freqs_mhz: vec![1500, 2200, 2500],
        }
    }
}

/// The AC-power measurement label shared by every case.
const AC: &str = "ac";

/// Builds the declarative scenario for one sweep configuration:
/// `n_threads` logical CPUs leave C2 at t = 0, the machine settles for
/// 50 ms, and mean AC power is observed over the next `duration_s`.
fn scenario(
    cfg: &Config,
    numbering: &CpuNumbering,
    kind: Option<SweepKind>,
    n_threads: usize,
) -> Scenario {
    let mut sc = Scenario::new();
    if let Some(kind) = kind {
        let mut at = sc.at(0);
        for cpu_idx in 0..n_threads {
            let thread = numbering.thread_of(LogicalCpu(cpu_idx as u32));
            at = match kind {
                SweepKind::C1 => at.cstate(thread, 2, false),
                SweepKind::ActivePause(mhz) => at
                    // Both siblings' requests must drop or the idle
                    // sibling's nominal request pins the core (the
                    // Section V-A rule).
                    .pstate(thread, mhz)
                    .pstate(ThreadId(thread.0 ^ 1), mhz)
                    .workload(thread, KernelClass::Pause, OperandWeight::HALF),
            };
        }
    }
    sc.probe(AC, Probe::AcTrueMeanW, Window::span_secs(0.05, 0.05 + cfg.duration_s));
    sc
}

/// The sweep kinds in presentation order: C1 first, then one active
/// pause sweep per configured frequency.
fn kinds(cfg: &Config) -> Vec<SweepKind> {
    let mut kinds = vec![SweepKind::C1];
    kinds.extend(cfg.freqs_mhz.iter().map(|&f| SweepKind::ActivePause(f)));
    kinds
}

/// The full staircase grid as a declarative [`Sweep`]: a kind axis
/// (outermost, like the figure's curves) crossed with a thread-count
/// axis, the joint cell scenario built in the finish hook. The seed
/// derivation reproduces the module's historical per-case seeds
/// (`child(seed, kind_index * 1000 + count_index)`).
pub fn sweep(cfg: &Config, seed: u64) -> Sweep {
    let sim_cfg = SimConfig::epyc_7502_2s();
    let numbering = CpuNumbering::linux_default(&sim_cfg.topology);
    let kinds = kinds(cfg);
    let mut kind_axis = Axis::new("kind");
    for (ki, kind) in kinds.iter().enumerate() {
        kind_axis =
            kind_axis.with(format!("{kind:?}"), move |draft| draft.set_param("kind", ki as f64));
    }
    let count_axis = Axis::param("threads", cfg.thread_counts.iter().map(|&count| count as f64));
    let counts = cfg.thread_counts.len().max(1) as u64;
    let cfg = cfg.clone();
    Sweep::new("fig07", sim_cfg)
        .seed_fn(move |i| seeds::child(seed, (i / counts) * 1000 + i % counts))
        .axis(kind_axis)
        .axis(count_axis)
        .finish(move |draft| {
            let kind = kinds[draft.param("kind") as usize];
            let count = draft.param("threads") as usize;
            draft.scenario = scenario(&cfg, &numbering, Some(kind), count);
        })
}

/// Runs the staircase through the streaming sweep engine.
pub fn run(cfg: &Config, seed: u64) -> Fig7Result {
    run_with(cfg, seed, &Session::new())
}

/// [`run`] on an explicit session (the worker/shard-invariance hook).
fn run_with(cfg: &Config, seed: u64, session: &Session) -> Fig7Result {
    run_checkpointed(cfg, seed, session, &CheckpointSpec::none())
        .expect("checkpointing disabled")
        .expect("no halt configured")
}

/// [`run`] with checkpoint/resume: persists the grouped staircase cells
/// and the all-C2 baseline at every shard boundary per `spec`, and
/// resumes byte-identically. Returns `None` on a deliberate
/// `--halt-after` halt.
///
/// # Errors
/// Errors when the checkpoint cannot be read, written, or does not
/// belong to this grid.
pub fn run_checkpointed(
    cfg: &Config,
    seed: u64,
    session: &Session,
    spec: &CheckpointSpec,
) -> Result<Option<Fig7Result>, CheckpointError> {
    let sim_cfg = SimConfig::epyc_7502_2s();
    let numbering = CpuNumbering::linux_default(&sim_cfg.topology);

    let sweep = sweep(cfg, seed);
    // The all-C2 baseline sits outside the kind × count seed layout
    // (historical seed 999), so it rides along as one extra case
    // appended to the grid stream, sharing the grid's booted prototype.
    let baseline_case = zen2_sim::Case::new(
        "fig07/baseline",
        sim_cfg,
        scenario(cfg, &numbering, None, 0),
        seeds::child(seed, 999),
    );
    let mut state = Fig7State {
        grid_len: sweep.len(),
        grouped: GroupedStats::new(&sweep, &["kind", "threads"]),
        baseline: OnlineStats::new(),
    };
    if !run_resumable(&sweep, vec![baseline_case], session, spec, &mut state)? {
        return Ok(None);
    }

    // One grouped row per (kind, count) cell, in grid order — fold them
    // back into the figure's per-kind curves.
    let mut rows = state.grouped.rows();
    let curves = kinds(cfg)
        .into_iter()
        .map(|kind| Curve {
            kind,
            thread_counts: cfg.thread_counts.clone(),
            ac_w: rows.by_ref().take(cfg.thread_counts.len()).map(|(_, s)| s.mean()).collect(),
        })
        .collect();
    Ok(Some(Fig7Result { baseline_w: state.baseline.mean(), curves }))
}

/// The resumable accumulator bundle: the grouped staircase cells plus
/// the all-C2 baseline rider.
struct Fig7State {
    grid_len: usize,
    grouped: GroupedStats<OnlineStats>,
    baseline: OnlineStats,
}

impl CheckpointState for Fig7State {
    fn save_into(&self, checkpoint: &mut Checkpoint) {
        checkpoint.set_grouped("grid", &self.grouped);
        checkpoint.set_single("baseline", &self.baseline);
    }

    fn restore_from(&mut self, checkpoint: &Checkpoint) -> Result<(), CheckpointError> {
        self.grouped = checkpoint.grouped("grid", &self.grouped)?;
        self.baseline = checkpoint.single("baseline")?;
        Ok(())
    }

    fn fold(&mut self, index: usize, run: Run) {
        if index < self.grid_len {
            self.grouped.entry(index).push(run.watts(AC));
        } else {
            self.baseline.push(run.watts(AC));
        }
    }
}

/// Derived staircase parameters from a C1 curve.
pub fn c1_staircase(result: &Fig7Result) -> (f64, f64) {
    let c1 = result.curves.iter().find(|c| c.kind == SweepKind::C1).expect("C1 curve present");
    let first = c1.ac_w[0];
    // Slope per additional core over the first-socket portion.
    let idx64 = c1.thread_counts.iter().position(|&n| n == 64).expect("64-thread point");
    let slope = (c1.ac_w[idx64] - c1.ac_w[0]) / (c1.thread_counts[idx64] - 1) as f64;
    (first, slope)
}

/// Renders the summary and curves.
pub fn render(result: &Fig7Result) -> String {
    tables(result).iter().map(Table::render).collect()
}

/// The summary and curves as [`Table`]s (for text, CSV, or JSON output).
pub fn tables(result: &Fig7Result) -> Vec<Table> {
    let mut t = Table::new(
        "Fig. 7 — idle-state power staircase, paper / measured",
        &["quantity", "paper / measured"],
    );
    t.row(&["all threads C2 [W]".into(), compare(paper::ALL_C2_W, result.baseline_w, "")]);
    let (first_c1, slope_c1) = c1_staircase(result);
    t.row(&["first core in C1 [W]".into(), compare(paper::FIRST_C1_W, first_c1, "")]);
    t.row(&[
        "per additional C1 core [W]".into(),
        format!("{:.2} / {:.3}", paper::PER_C1_CORE_W, slope_c1),
    ]);
    if let Some(active) = result.curves.iter().find(|c| c.kind == SweepKind::ActivePause(2500)) {
        t.row(&[
            "first active thread [W]".into(),
            compare(paper::FIRST_ACTIVE_W, active.ac_w[0], ""),
        ]);
    }
    let mut curves = Table::new(
        "Fig. 7 curves — AC power [W] vs threads not in C2",
        &["threads", "C1", "pause@1.5GHz", "pause@2.2GHz", "pause@2.5GHz"],
    );
    for (i, &n) in result.curves[0].thread_counts.iter().enumerate() {
        let mut row = vec![format!("{n}")];
        for c in &result.curves {
            row.push(format!("{:.1}", c.ac_w[i]));
        }
        curves.row(&row);
    }
    vec![t, curves]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Config {
        Config {
            duration_s: 0.2,
            thread_counts: vec![1, 2, 4, 64, 65, 128],
            freqs_mhz: vec![1500, 2500],
        }
    }

    #[test]
    fn sweep_engine_matches_materialized_session() {
        // The sweep port must not change results: the same case list
        // built by hand (as the module did before the sweep engine —
        // baseline first, then kind-major cells with the historical
        // `ki * 1000 + ci` seed layout) and run materialized produces
        // identical curves, for more than one worker/shard split.
        use zen2_sim::Case;
        let cfg = quick();
        let seed = 65;
        let sim_cfg = SimConfig::epyc_7502_2s();
        let numbering = CpuNumbering::linux_default(&sim_cfg.topology);
        let kinds = super::kinds(&cfg);
        let mut cases = vec![Case::new(
            "baseline",
            sim_cfg.clone(),
            scenario(&cfg, &numbering, None, 0),
            seeds::child(seed, 999),
        )];
        for (ki, &kind) in kinds.iter().enumerate() {
            for (ci, &count) in cfg.thread_counts.iter().enumerate() {
                cases.push(Case::new(
                    format!("{kind:?}/{count}"),
                    sim_cfg.clone(),
                    scenario(&cfg, &numbering, Some(kind), count),
                    seeds::child(seed, (ki * 1000 + ci) as u64),
                ));
            }
        }
        let runs = Session::new().run(&cases).unwrap();
        let mut curves = Vec::new();
        let mut next = 1;
        for &kind in &kinds {
            let ac_w: Vec<f64> =
                runs[next..next + cfg.thread_counts.len()].iter().map(|r| r.watts(AC)).collect();
            next += cfg.thread_counts.len();
            curves.push(Curve { kind, thread_counts: cfg.thread_counts.clone(), ac_w });
        }
        let materialized = Fig7Result { baseline_w: runs[0].watts(AC), curves };

        for (workers, shard) in [(1, 1), (7, 5)] {
            let streamed = run_with(&cfg, seed, &Session::new().workers(workers).shard_size(shard));
            assert_eq!(streamed.baseline_w, materialized.baseline_w);
            for (s, m) in streamed.curves.iter().zip(&materialized.curves) {
                assert_eq!(s.kind, m.kind);
                assert_eq!(s.ac_w, m.ac_w, "workers {workers} shard {shard} kind {:?}", s.kind);
            }
        }
    }

    #[test]
    fn baseline_and_first_step_match_paper() {
        let r = run(&quick(), 61);
        assert!((r.baseline_w - paper::ALL_C2_W).abs() < 1.5, "baseline {}", r.baseline_w);
        let (first_c1, slope) = c1_staircase(&r);
        assert!((first_c1 - paper::FIRST_C1_W).abs() < 2.0, "first C1 {first_c1}");
        assert!((slope - paper::PER_C1_CORE_W).abs() < 0.02, "slope {slope}");
    }

    #[test]
    fn second_hardware_threads_add_nothing_in_c1() {
        let r = run(&quick(), 62);
        let c1 = &r.curves[0];
        let at_64 = c1.ac_w[c1.thread_counts.iter().position(|&n| n == 64).unwrap()];
        let at_128 = c1.ac_w[c1.thread_counts.iter().position(|&n| n == 128).unwrap()];
        assert!((at_128 - at_64).abs() < 0.5, "siblings add {:.2} W", at_128 - at_64);
    }

    #[test]
    fn active_power_depends_on_frequency_c1_does_not() {
        let r = run(&quick(), 63);
        let slope = |kind: SweepKind| {
            let c = r.curves.iter().find(|c| c.kind == kind).unwrap();
            let i1 = c.thread_counts.iter().position(|&n| n == 1).unwrap();
            let i64 = c.thread_counts.iter().position(|&n| n == 64).unwrap();
            (c.ac_w[i64] - c.ac_w[i1]) / 63.0
        };
        let slow = slope(SweepKind::ActivePause(1500));
        let fast = slope(SweepKind::ActivePause(2500));
        assert!(fast > 1.5 * slow, "active slope must scale with f*V^2: {slow} vs {fast}");
        assert!((fast - paper::PER_ACTIVE_CORE_W).abs() < 0.05, "fast slope {fast}");
    }

    #[test]
    fn first_active_thread_matches_first_c1_level() {
        // Paper: 180.4 W vs 180.3 W — the package wake dominates.
        let r = run(&quick(), 64);
        let active = r.curves.iter().find(|c| c.kind == SweepKind::ActivePause(2500)).unwrap();
        let (first_c1, _) = c1_staircase(&r);
        assert!((active.ac_w[0] - first_c1).abs() < 1.0);
    }
}
