//! §V-A — influence of idling hardware threads on core frequencies.
//!
//! One thread runs `while(1);` at the minimum frequency; the sibling
//! hardware thread is set to the nominal frequency and left idle (or
//! offlined). On Zen 2 the idle/offline sibling's request still elevates
//! the core — never observed on Intel with deep idle states enabled.
//!
//! The three sibling configurations are declarative [`Scenario`]s run as
//! one [`Session`] batch.

use crate::report::Table;
use serde::Serialize;
use zen2_sim::perf::ThreadCounters;
use zen2_sim::time::{MILLISECOND, SECOND};
use zen2_sim::{Case, Probe, Scenario, Session, SimConfig, Window};
use zen2_topology::ThreadId;

/// Sibling configurations swept.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum SiblingMode {
    /// Sibling idle in C2 with a nominal-frequency request.
    IdleAtNominal,
    /// Sibling offlined while requesting nominal.
    OfflineAtNominal,
    /// Sibling idle with its request lowered to the minimum — the paper's
    /// recommended mitigation.
    IdleAtMinimum,
}

/// One observation.
#[derive(Debug, Clone, Serialize)]
pub struct Observation {
    /// The sibling configuration.
    pub mode: SiblingMode,
    /// perf-observed frequency of the active thread, GHz.
    pub active_freq_ghz: f64,
    /// Cycles per second the idle sibling reports.
    pub sibling_cycles_per_s: f64,
}

/// Full experiment output.
#[derive(Debug, Clone, Serialize)]
pub struct Sec5aResult {
    /// All observations.
    pub observations: Vec<Observation>,
}

/// Builds one sibling configuration's scenario.
fn scenario(mode: SiblingMode) -> Scenario {
    let active = ThreadId(0);
    let sibling = ThreadId(1);
    let mut sc = Scenario::new();
    let at = sc
        .at(0)
        .workload(active, zen2_isa::KernelClass::BusyWait, zen2_isa::OperandWeight::HALF)
        .pstate(active, 1500);
    match mode {
        SiblingMode::IdleAtNominal => at.pstate(sibling, 2500),
        SiblingMode::OfflineAtNominal => at.pstate(sibling, 2500).online(sibling, false),
        SiblingMode::IdleAtMinimum => at.pstate(sibling, 1500),
    };
    // 20 ms settling, then one second of perf counting on both threads.
    let window = Window::span(20 * MILLISECOND, 20 * MILLISECOND + SECOND);
    sc.probe("active", Probe::CounterDelta(active), window);
    sc.probe("sibling", Probe::CounterDelta(sibling), window);
    sc
}

/// Runs the three sibling configurations.
pub fn run(seed: u64) -> Sec5aResult {
    let modes =
        [SiblingMode::IdleAtNominal, SiblingMode::OfflineAtNominal, SiblingMode::IdleAtMinimum];
    let sim_cfg = SimConfig::epyc_7502_2s();
    let cases: Vec<Case> = modes
        .iter()
        .enumerate()
        .map(|(i, &mode)| {
            Case::new(
                format!("{mode:?}"),
                sim_cfg.clone(),
                scenario(mode),
                crate::seeds::child(seed, i as u64),
            )
        })
        .collect();
    let runs = Session::new().run(&cases).expect("sec5a scenarios validate");

    let observations = modes
        .iter()
        .zip(&runs)
        .map(|(&mode, run)| {
            let (a_begin, a_end, _) = run.counter_delta("active");
            let (s_begin, s_end, wall_s) = run.counter_delta("sibling");
            Observation {
                mode,
                active_freq_ghz: ThreadCounters::effective_ghz(&a_begin, &a_end, 2.5),
                sibling_cycles_per_s: (s_end.cycles - s_begin.cycles) / wall_s,
            }
        })
        .collect();
    Sec5aResult { observations }
}

/// Renders the observation table.
pub fn render(r: &Sec5aResult) -> String {
    tables(r).iter().map(Table::render).collect()
}

/// The observations as a [`Table`] (for text, CSV, or JSON output).
pub fn tables(r: &Sec5aResult) -> Vec<Table> {
    let mut t = Table::new(
        "SS V-A — active thread set to 1.5 GHz; sibling influence (paper: idle/offline sibling at 2.5 GHz elevates the core to 2.5 GHz)",
        &["sibling", "active thread freq [GHz]", "sibling cycles/s"],
    );
    for o in &r.observations {
        t.row(&[
            format!("{:?}", o.mode),
            format!("{:.3}", o.active_freq_ghz),
            format!("{:.0}", o.sibling_cycles_per_s),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find(r: &Sec5aResult, mode: SiblingMode) -> &Observation {
        r.observations.iter().find(|o| o.mode == mode).expect("mode present")
    }

    #[test]
    fn idle_sibling_elevates_the_core() {
        let r = run(101);
        let o = find(&r, SiblingMode::IdleAtNominal);
        assert!((o.active_freq_ghz - 2.5).abs() < 0.01, "elevated to {}", o.active_freq_ghz);
    }

    #[test]
    fn offline_sibling_also_elevates() {
        let r = run(102);
        let o = find(&r, SiblingMode::OfflineAtNominal);
        assert!((o.active_freq_ghz - 2.5).abs() < 0.01, "elevated to {}", o.active_freq_ghz);
        // Offline threads execute nothing at all.
        assert_eq!(o.sibling_cycles_per_s, 0.0);
    }

    #[test]
    fn lowering_the_sibling_request_restores_control() {
        let r = run(103);
        let o = find(&r, SiblingMode::IdleAtMinimum);
        assert!((o.active_freq_ghz - 1.5).abs() < 0.01, "restored to {}", o.active_freq_ghz);
    }

    #[test]
    fn idle_sibling_reports_under_60k_cycles() {
        // "The idling thread reports only a usage of less than
        // 60 000 cycle/s".
        let r = run(104);
        let o = find(&r, SiblingMode::IdleAtNominal);
        assert!(
            o.sibling_cycles_per_s > 0.0 && o.sibling_cycles_per_s < 60_000.0,
            "sibling cycles {}",
            o.sibling_cycles_per_s
        );
    }
}
