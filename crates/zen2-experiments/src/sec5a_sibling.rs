//! §V-A — influence of idling hardware threads on core frequencies.
//!
//! One thread runs `while(1);` at the minimum frequency; the sibling
//! hardware thread is set to the nominal frequency and left idle (or
//! offlined). On Zen 2 the idle/offline sibling's request still elevates
//! the core — never observed on Intel with deep idle states enabled.

use crate::report::Table;
use serde::Serialize;
use zen2_isa::{KernelClass, OperandWeight};
use zen2_sim::perf::ThreadCounters;
use zen2_sim::time::MILLISECOND;
use zen2_sim::{SimConfig, System};
use zen2_topology::ThreadId;

/// Sibling configurations swept.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum SiblingMode {
    /// Sibling idle in C2 with a nominal-frequency request.
    IdleAtNominal,
    /// Sibling offlined while requesting nominal.
    OfflineAtNominal,
    /// Sibling idle with its request lowered to the minimum — the paper's
    /// recommended mitigation.
    IdleAtMinimum,
}

/// One observation.
#[derive(Debug, Clone, Serialize)]
pub struct Observation {
    /// The sibling configuration.
    pub mode: SiblingMode,
    /// perf-observed frequency of the active thread, GHz.
    pub active_freq_ghz: f64,
    /// Cycles per second the idle sibling reports.
    pub sibling_cycles_per_s: f64,
}

/// Full experiment output.
#[derive(Debug, Clone, Serialize)]
pub struct Sec5aResult {
    /// All observations.
    pub observations: Vec<Observation>,
}

/// Runs the three sibling configurations.
pub fn run(seed: u64) -> Sec5aResult {
    let mut observations = Vec::new();
    for (i, &mode) in [
        SiblingMode::IdleAtNominal,
        SiblingMode::OfflineAtNominal,
        SiblingMode::IdleAtMinimum,
    ]
    .iter()
    .enumerate()
    {
        let mut sys = System::new(SimConfig::epyc_7502_2s(), crate::seeds::child(seed, i as u64));
        let active = ThreadId(0);
        let sibling = ThreadId(1);
        sys.set_workload(active, KernelClass::BusyWait, OperandWeight::HALF);
        sys.set_thread_pstate_mhz(active, 1500);
        match mode {
            SiblingMode::IdleAtNominal => {
                sys.set_thread_pstate_mhz(sibling, 2500);
            }
            SiblingMode::OfflineAtNominal => {
                sys.set_thread_pstate_mhz(sibling, 2500);
                sys.set_online(sibling, false);
            }
            SiblingMode::IdleAtMinimum => {
                sys.set_thread_pstate_mhz(sibling, 1500);
            }
        }
        sys.run_for_ns(20 * MILLISECOND);
        let b_active = sys.counters(active);
        let b_sib = sys.counters(sibling);
        sys.run_for_secs(1.0);
        let a_active = sys.counters(active);
        let a_sib = sys.counters(sibling);
        observations.push(Observation {
            mode,
            active_freq_ghz: ThreadCounters::effective_ghz(&b_active, &a_active, 2.5),
            sibling_cycles_per_s: a_sib.cycles - b_sib.cycles,
        });
    }
    Sec5aResult { observations }
}

/// Renders the observation table.
pub fn render(r: &Sec5aResult) -> String {
    let mut t = Table::new(
        "SS V-A — active thread set to 1.5 GHz; sibling influence (paper: idle/offline sibling at 2.5 GHz elevates the core to 2.5 GHz)",
        &["sibling", "active thread freq [GHz]", "sibling cycles/s"],
    );
    for o in &r.observations {
        t.row(&[
            format!("{:?}", o.mode),
            format!("{:.3}", o.active_freq_ghz),
            format!("{:.0}", o.sibling_cycles_per_s),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find(r: &Sec5aResult, mode: SiblingMode) -> &Observation {
        r.observations.iter().find(|o| o.mode == mode).expect("mode present")
    }

    #[test]
    fn idle_sibling_elevates_the_core() {
        let r = run(101);
        let o = find(&r, SiblingMode::IdleAtNominal);
        assert!((o.active_freq_ghz - 2.5).abs() < 0.01, "elevated to {}", o.active_freq_ghz);
    }

    #[test]
    fn offline_sibling_also_elevates() {
        let r = run(102);
        let o = find(&r, SiblingMode::OfflineAtNominal);
        assert!((o.active_freq_ghz - 2.5).abs() < 0.01, "elevated to {}", o.active_freq_ghz);
        // Offline threads execute nothing at all.
        assert_eq!(o.sibling_cycles_per_s, 0.0);
    }

    #[test]
    fn lowering_the_sibling_request_restores_control() {
        let r = run(103);
        let o = find(&r, SiblingMode::IdleAtMinimum);
        assert!((o.active_freq_ghz - 1.5).abs() < 0.01, "restored to {}", o.active_freq_ghz);
    }

    #[test]
    fn idle_sibling_reports_under_60k_cycles() {
        // "The idling thread reports only a usage of less than
        // 60 000 cycle/s".
        let r = run(104);
        let o = find(&r, SiblingMode::IdleAtNominal);
        assert!(
            o.sibling_cycles_per_s > 0.0 && o.sibling_cycles_per_s < 60_000.0,
            "sibling cycles {}",
            o.sibling_cycles_per_s
        );
    }
}
