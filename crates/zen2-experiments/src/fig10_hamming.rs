//! Fig. 10 — data-dependent power and what RAPL sees of it.
//!
//! Blocks of an unrolled instruction loop run on all hardware threads;
//! each block randomly picks a relative operand Hamming weight of 0, 0.5
//! or 1. The external reference separates the weights cleanly for
//! `vxorps` (≈21 W, 7.6 %, no overlap); AMD's RAPL averages stay within
//! ~0.1 % with strongly overlapping distributions, and only indirect
//! (thermal) effects leak any information at all. The `shr` variant
//! contrasts PLATYPUS: the narrow datapath barely shows even at the wall.
//!
//! The whole sweep is one declarative [`Scenario`]: the per-block weight
//! sequence is pre-drawn from the seed, each block re-schedules the
//! kernel at its weight, and every block carries its own AC
//! ([`Probe::AcTrueMeanW`]), RAPL package ([`Probe::RaplW`]) and RAPL
//! core-0 ([`Probe::RaplCoreW`]) windows. The blocks must share one
//! machine (thermal state carries across them, which is exactly the
//! side channel under study), so the grid is a single-case [`Sweep`]
//! over an instruction axis streamed through the [`Session`] worker
//! pool, reduced into per-weight buckets by a [`GroupedStats`] keyed on
//! that axis.

use crate::report::Table;
use crate::seeds;
use crate::Scale;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use zen2_isa::{KernelClass, OperandWeight};
use zen2_sim::checkpoint::{run_resumable, CheckpointState};
use zen2_sim::methodology::mean;
use zen2_sim::{
    Axis, Checkpoint, CheckpointError, CheckpointSpec, GroupedStats, Json, Probe, Run, Scenario,
    Session, SimConfig, Snapshot, SnapshotError, Sweep, Window,
};
use zen2_topology::{CoreId, ThreadId};

/// Per-weight sample sets for one metric.
#[derive(Debug, Clone, Default, Serialize)]
pub struct WeightSamples {
    /// Samples at weight 0.
    pub w0: Vec<f64>,
    /// Samples at weight 0.5.
    pub w05: Vec<f64>,
    /// Samples at weight 1.
    pub w1: Vec<f64>,
}

impl WeightSamples {
    fn push(&mut self, w: OperandWeight, v: f64) {
        if w.0 == 0.0 {
            self.w0.push(v);
        } else if w.0 == 1.0 {
            self.w1.push(v);
        } else {
            self.w05.push(v);
        }
    }

    /// Mean per weight (w0, w05, w1).
    pub fn means(&self) -> (f64, f64, f64) {
        (mean(&self.w0), mean(&self.w05), mean(&self.w1))
    }

    /// Absolute spread of the three means.
    pub fn mean_spread(&self) -> f64 {
        let (a, b, c) = self.means();
        a.max(b).max(c) - a.min(b).min(c)
    }

    /// Whether the w0 and w1 sample sets overlap at all.
    pub fn distributions_overlap(&self) -> bool {
        let max0 = self.w0.iter().copied().fold(f64::MIN, f64::max);
        let min1 = self.w1.iter().copied().fold(f64::MAX, f64::min);
        max0 >= min1
    }
}

/// Full experiment output for one instruction.
#[derive(Debug, Clone, Serialize)]
pub struct Fig10Result {
    /// The instruction swept.
    pub instruction: String,
    /// Full-system AC power per weight.
    pub ac_w: WeightSamples,
    /// RAPL core-0 power per weight.
    pub rapl_core0_w: WeightSamples,
    /// RAPL package sum per weight.
    pub rapl_pkg_w: WeightSamples,
}

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Total instruction blocks (paper: 3000, ~1000 per weight).
    pub blocks: usize,
    /// Duration per block, seconds (paper: 10 s).
    pub block_s: f64,
}

impl Config {
    /// Scaled configuration.
    pub fn new(scale: Scale) -> Self {
        Self { blocks: scale.pick(90, 3000), block_s: scale.pick(0.15, 10.0) }
    }
}

/// Warm-up before the first block (settle + the paper's pre-heat).
const T_BLOCKS_S: f64 = 0.1;

/// Builds the weight-sweep scenario plus the pre-drawn per-block weight
/// sequence it schedules.
pub fn scenario(cfg: &Config, seed: u64, class: KernelClass) -> (Scenario, Vec<OperandWeight>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seeds::child(seed, 1));
    let mut sc = Scenario::new();
    let mut at = sc.at(0);
    for t in 0..128u32 {
        at = at.workload(ThreadId(t), class, OperandWeight::HALF);
    }
    sc.at_secs(T_BLOCKS_S).preheat();

    let mut weights = Vec::with_capacity(cfg.blocks);
    for k in 0..cfg.blocks {
        let weight = *OperandWeight::PAPER_SWEEP.choose(&mut rng).expect("non-empty weight set");
        weights.push(weight);
        let t0 = T_BLOCKS_S + k as f64 * cfg.block_s;
        let mut at = sc.at_secs(t0);
        for t in 0..128u32 {
            at = at.workload(ThreadId(t), class, weight);
        }
        let window = Window::span_secs(t0, t0 + cfg.block_s);
        sc.probe(format!("ac{k}"), Probe::AcTrueMeanW, window);
        sc.probe(format!("pkg{k}"), Probe::RaplW, window);
        sc.probe(format!("core0_{k}"), Probe::RaplCoreW(CoreId(0)), window);
    }
    (sc, weights)
}

/// The three per-weight metric buckets one instruction's blocks reduce
/// into — the [`GroupedStats`] accumulator for the instruction axis.
#[derive(Debug, Clone, Default)]
struct WeightBuckets {
    ac_w: WeightSamples,
    rapl_core0_w: WeightSamples,
    rapl_pkg_w: WeightSamples,
}

impl Snapshot for WeightSamples {
    fn snapshot(&self) -> Json {
        Json::obj([
            ("w0", Json::f64s(self.w0.iter().copied())),
            ("w05", Json::f64s(self.w05.iter().copied())),
            ("w1", Json::f64s(self.w1.iter().copied())),
        ])
    }

    fn restore(json: &Json) -> Result<Self, SnapshotError> {
        Ok(Self {
            w0: json.get("w0")?.as_f64s()?,
            w05: json.get("w05")?.as_f64s()?,
            w1: json.get("w1")?.as_f64s()?,
        })
    }
}

impl Snapshot for WeightBuckets {
    fn snapshot(&self) -> Json {
        Json::obj([
            ("ac_w", self.ac_w.snapshot()),
            ("rapl_core0_w", self.rapl_core0_w.snapshot()),
            ("rapl_pkg_w", self.rapl_pkg_w.snapshot()),
        ])
    }

    fn restore(json: &Json) -> Result<Self, SnapshotError> {
        Ok(Self {
            ac_w: WeightSamples::restore(json.get("ac_w")?)?,
            rapl_core0_w: WeightSamples::restore(json.get("rapl_core0_w")?)?,
            rapl_pkg_w: WeightSamples::restore(json.get("rapl_pkg_w")?)?,
        })
    }
}

/// The weight sweep as a declarative [`Sweep`]: a single-value
/// instruction axis (the blocks of one instruction must share one
/// machine, so they stay inside one case), plus the pre-drawn per-block
/// weight sequence its scenario schedules.
pub fn sweep(cfg: &Config, seed: u64, class: KernelClass) -> (Sweep, Vec<OperandWeight>) {
    let (sc, weights) = scenario(cfg, seed, class);
    let sweep = Sweep::new("fig10", SimConfig::epyc_7502_2s())
        .seed(seed)
        .axis(Axis::new("instr").with(class.name(), move |draft| draft.scenario = sc.clone()));
    (sweep, weights)
}

/// Runs the weight sweep for one instruction kernel through the
/// streaming sweep engine.
pub fn run(cfg: &Config, seed: u64, class: KernelClass) -> Fig10Result {
    run_with(cfg, seed, class, &Session::new())
}

/// [`run`] on an explicit session (the worker/shard-invariance hook).
fn run_with(cfg: &Config, seed: u64, class: KernelClass, session: &Session) -> Fig10Result {
    run_checkpointed(cfg, seed, class, session, &CheckpointSpec::none())
        .expect("checkpointing disabled")
        .expect("no halt configured")
}

/// [`run`] with checkpoint/resume. The grid is a single case (the
/// blocks must share one machine), so the only possible cut is after
/// that case completes — `--checkpoint` still makes a finished run
/// re-emittable via `--resume` without re-simulating, and the flag
/// exists uniformly across every wide-grid binary. Returns `None` on a
/// deliberate `--halt-after` halt.
///
/// # Errors
/// Errors when the checkpoint cannot be read, written, or does not
/// belong to this grid.
pub fn run_checkpointed(
    cfg: &Config,
    seed: u64,
    class: KernelClass,
    session: &Session,
    spec: &CheckpointSpec,
) -> Result<Option<Fig10Result>, CheckpointError> {
    assert!(
        matches!(class, KernelClass::VXorps | KernelClass::Shr),
        "Fig. 10 sweeps vxorps or shr"
    );
    let (sweep, weights) = sweep(cfg, seed, class);
    /// The resumable accumulator: the per-weight buckets, routed by the
    /// pre-drawn block weight sequence.
    struct Buckets {
        grouped: GroupedStats<WeightBuckets>,
        weights: Vec<OperandWeight>,
    }
    impl CheckpointState for Buckets {
        fn save_into(&self, checkpoint: &mut Checkpoint) {
            checkpoint.set_grouped("buckets", &self.grouped);
        }
        fn restore_from(&mut self, checkpoint: &Checkpoint) -> Result<(), CheckpointError> {
            self.grouped = checkpoint.grouped("buckets", &self.grouped)?;
            Ok(())
        }
        fn fold(&mut self, index: usize, run: Run) {
            let buckets = self.grouped.entry(index);
            for (k, &weight) in self.weights.iter().enumerate() {
                buckets.ac_w.push(weight, run.watts(&format!("ac{k}")));
                buckets.rapl_core0_w.push(weight, run.watts(&format!("core0_{k}")));
                buckets.rapl_pkg_w.push(weight, run.watts_pair(&format!("pkg{k}")).0);
            }
        }
    }
    let mut state = Buckets { grouped: GroupedStats::new(&sweep, &["instr"]), weights };
    if !run_resumable(&sweep, vec![], session, spec, &mut state)? {
        return Ok(None);
    }
    let (_, buckets) =
        state.grouped.into_rows().next().expect("the instruction axis has exactly one group");
    Ok(Some(Fig10Result {
        instruction: class.name().into(),
        ac_w: buckets.ac_w,
        rapl_core0_w: buckets.rapl_core0_w,
        rapl_pkg_w: buckets.rapl_pkg_w,
    }))
}

/// Renders the paper-style summary.
pub fn render(r: &Fig10Result) -> String {
    let mut out = tables(r)[0].render();
    let ac_rel = r.ac_w.mean_spread() / mean(&r.ac_w.w05) * 100.0;
    let rapl_rel = r.rapl_core0_w.mean_spread() / mean(&r.rapl_core0_w.w05).max(1e-9) * 100.0;
    out.push_str(&format!(
        "AC spread {:.1} W ({:.1} %; paper vxorps: 21 W / 7.6 %), RAPL core spread {:.2} % \
         (paper: within 0.08 %)\n",
        r.ac_w.mean_spread(),
        ac_rel,
        rapl_rel
    ));
    out
}

/// The summary as a [`Table`] (for text, CSV, or JSON output).
pub fn tables(r: &Fig10Result) -> Vec<Table> {
    let mut t = Table::new(
        format!("Fig. 10 — {} operand-weight sweep", r.instruction),
        &["metric", "mean @w=0", "mean @w=0.5", "mean @w=1", "spread", "w0/w1 overlap"],
    );
    for (name, s) in [
        ("system AC [W]", &r.ac_w),
        ("RAPL core0 [W]", &r.rapl_core0_w),
        ("RAPL pkg sum [W]", &r.rapl_pkg_w),
    ] {
        let (a, b, c) = s.means();
        t.row(&[
            name.into(),
            format!("{a:.3}"),
            format!("{b:.3}"),
            format!("{c:.3}"),
            format!("{:.3}", s.mean_spread()),
            format!("{}", s.distributions_overlap()),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Config {
        Config { blocks: 36, block_s: 0.1 }
    }

    #[test]
    fn sweep_engine_matches_materialized_session() {
        // The sweep port must not change results: the same single case
        // built by hand (as the module did before the sweep engine) and
        // run materialized produces a byte-identical summary table, for
        // more than one worker/shard split.
        use zen2_sim::Case;
        let cfg = quick();
        let seed = 95;
        let class = KernelClass::VXorps;
        let (sc, weights) = scenario(&cfg, seed, class);
        let case = Case::new("fig10", SimConfig::epyc_7502_2s(), sc, seeds::child(seed, 0));
        let runs = Session::new().run(std::slice::from_ref(&case)).unwrap();
        let mut materialized = Fig10Result {
            instruction: class.name().into(),
            ac_w: WeightSamples::default(),
            rapl_core0_w: WeightSamples::default(),
            rapl_pkg_w: WeightSamples::default(),
        };
        for (k, &weight) in weights.iter().enumerate() {
            materialized.ac_w.push(weight, runs[0].watts(&format!("ac{k}")));
            materialized.rapl_core0_w.push(weight, runs[0].watts(&format!("core0_{k}")));
            materialized.rapl_pkg_w.push(weight, runs[0].watts_pair(&format!("pkg{k}")).0);
        }
        for (workers, shard) in [(1, 1), (7, 64)] {
            let streamed =
                run_with(&cfg, seed, class, &Session::new().workers(workers).shard_size(shard));
            assert_eq!(render(&streamed), render(&materialized), "workers {workers} shard {shard}");
            assert_eq!(streamed.ac_w.w0, materialized.ac_w.w0);
            assert_eq!(streamed.rapl_pkg_w.w1, materialized.rapl_pkg_w.w1);
        }
        assert_eq!(
            tables(&run(&cfg, seed, class))[0].to_json(),
            tables(&materialized)[0].to_json()
        );
    }

    #[test]
    fn vxorps_ac_separation_matches_fig10a() {
        let r = run(&quick(), 91, KernelClass::VXorps);
        let spread = r.ac_w.mean_spread();
        assert!((spread - 21.0).abs() < 4.0, "AC spread {spread:.1} W");
        // "with no overlap in distributions".
        assert!(!r.ac_w.distributions_overlap(), "AC weight classes must separate");
        // Ordering 0 < 0.5 < 1.
        let (a, b, c) = r.ac_w.means();
        assert!(a < b && b < c);
    }

    #[test]
    fn vxorps_rapl_is_blind_fig10b() {
        let r = run(&quick(), 92, KernelClass::VXorps);
        let (_, mid, _) = r.rapl_core0_w.means();
        let rel = r.rapl_core0_w.mean_spread() / mid;
        assert!(rel < 0.005, "RAPL core relative spread {rel:.5}");
        assert!(r.rapl_core0_w.distributions_overlap(), "RAPL distributions must overlap");
    }

    #[test]
    fn shr_barely_shows_even_at_the_wall() {
        let r = run(&quick(), 93, KernelClass::Shr);
        let (_, mid, _) = r.ac_w.means();
        let rel = r.ac_w.mean_spread() / mid;
        // Paper: "much closer, within 0.9 %".
        assert!(rel < 0.012, "shr AC relative spread {rel:.4}");
    }

    #[test]
    #[should_panic(expected = "vxorps or shr")]
    fn other_kernels_are_rejected() {
        let _ = run(&quick(), 94, KernelClass::AddPd);
    }
}
