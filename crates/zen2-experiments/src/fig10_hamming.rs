//! Fig. 10 — data-dependent power and what RAPL sees of it.
//!
//! Blocks of an unrolled instruction loop run on all hardware threads;
//! each block randomly picks a relative operand Hamming weight of 0, 0.5
//! or 1. The external reference separates the weights cleanly for
//! `vxorps` (≈21 W, 7.6 %, no overlap); AMD's RAPL averages stay within
//! ~0.1 % with strongly overlapping distributions, and only indirect
//! (thermal) effects leak any information at all. The `shr` variant
//! contrasts PLATYPUS: the narrow datapath barely shows even at the wall.

use crate::report::Table;
use crate::seeds;
use crate::Scale;
use rand::seq::SliceRandom;
use serde::Serialize;
use zen2_isa::{KernelClass, OperandWeight};
use zen2_sim::methodology::mean;
use zen2_sim::{SimConfig, System};
use zen2_topology::ThreadId;

/// Per-weight sample sets for one metric.
#[derive(Debug, Clone, Serialize)]
pub struct WeightSamples {
    /// Samples at weight 0.
    pub w0: Vec<f64>,
    /// Samples at weight 0.5.
    pub w05: Vec<f64>,
    /// Samples at weight 1.
    pub w1: Vec<f64>,
}

impl WeightSamples {
    fn push(&mut self, w: OperandWeight, v: f64) {
        if w.0 == 0.0 {
            self.w0.push(v);
        } else if w.0 == 1.0 {
            self.w1.push(v);
        } else {
            self.w05.push(v);
        }
    }

    /// Mean per weight (w0, w05, w1).
    pub fn means(&self) -> (f64, f64, f64) {
        (mean(&self.w0), mean(&self.w05), mean(&self.w1))
    }

    /// Absolute spread of the three means.
    pub fn mean_spread(&self) -> f64 {
        let (a, b, c) = self.means();
        a.max(b).max(c) - a.min(b).min(c)
    }

    /// Whether the w0 and w1 sample sets overlap at all.
    pub fn distributions_overlap(&self) -> bool {
        let max0 = self.w0.iter().copied().fold(f64::MIN, f64::max);
        let min1 = self.w1.iter().copied().fold(f64::MAX, f64::min);
        max0 >= min1
    }
}

/// Full experiment output for one instruction.
#[derive(Debug, Clone, Serialize)]
pub struct Fig10Result {
    /// The instruction swept.
    pub instruction: String,
    /// Full-system AC power per weight.
    pub ac_w: WeightSamples,
    /// RAPL core-0 power per weight.
    pub rapl_core0_w: WeightSamples,
    /// RAPL package sum per weight.
    pub rapl_pkg_w: WeightSamples,
}

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Total instruction blocks (paper: 3000, ~1000 per weight).
    pub blocks: usize,
    /// Duration per block, seconds (paper: 10 s).
    pub block_s: f64,
}

impl Config {
    /// Scaled configuration.
    pub fn new(scale: Scale) -> Self {
        Self { blocks: scale.pick(90, 3000), block_s: scale.pick(0.15, 10.0) }
    }
}

/// Runs the weight sweep for one instruction kernel.
pub fn run(cfg: &Config, seed: u64, class: KernelClass) -> Fig10Result {
    assert!(
        matches!(class, KernelClass::VXorps | KernelClass::Shr),
        "Fig. 10 sweeps vxorps or shr"
    );
    let mut sys = System::new(SimConfig::epyc_7502_2s(), seeds::child(seed, 0));
    // All 128 hardware threads execute the kernel.
    for t in 0..128u32 {
        sys.set_workload(ThreadId(t), class, OperandWeight::HALF);
    }
    sys.run_for_secs(0.1);
    sys.preheat();

    let empty = WeightSamples { w0: vec![], w05: vec![], w1: vec![] };
    let mut result = Fig10Result {
        instruction: class.name().into(),
        ac_w: empty.clone(),
        rapl_core0_w: empty.clone(),
        rapl_pkg_w: empty,
    };

    for _ in 0..cfg.blocks {
        let weight = *OperandWeight::PAPER_SWEEP
            .choose(sys.rng())
            .expect("non-empty weight set");
        for t in 0..128u32 {
            sys.set_workload(ThreadId(t), class, weight);
        }
        let t0 = sys.now_ns();
        sys.sync_rapl_msrs();
        let mut reader = zen2_rapl::RaplReader::new(&sys.config().topology.clone(), sys.msrs())
            .expect("reader");
        sys.run_for_secs(cfg.block_s);
        sys.sync_rapl_msrs();
        reader.poll(sys.msrs()).expect("reader poll");
        let dt = cfg.block_s;
        result.ac_w.push(weight, sys.trace_mean_w(t0, sys.now_ns()));
        result.rapl_core0_w.push(weight, reader.core_joules(0) / dt);
        result.rapl_pkg_w.push(weight, reader.package_sum_joules() / dt);
    }
    result
}

/// Renders the paper-style summary.
pub fn render(r: &Fig10Result) -> String {
    let mut t = Table::new(
        format!("Fig. 10 — {} operand-weight sweep", r.instruction),
        &["metric", "mean @w=0", "mean @w=0.5", "mean @w=1", "spread", "w0/w1 overlap"],
    );
    for (name, s) in [
        ("system AC [W]", &r.ac_w),
        ("RAPL core0 [W]", &r.rapl_core0_w),
        ("RAPL pkg sum [W]", &r.rapl_pkg_w),
    ] {
        let (a, b, c) = s.means();
        t.row(&[
            name.into(),
            format!("{a:.3}"),
            format!("{b:.3}"),
            format!("{c:.3}"),
            format!("{:.3}", s.mean_spread()),
            format!("{}", s.distributions_overlap()),
        ]);
    }
    let mut out = t.render();
    let ac_rel = r.ac_w.mean_spread() / mean(&r.ac_w.w05) * 100.0;
    let rapl_rel = r.rapl_core0_w.mean_spread() / mean(&r.rapl_core0_w.w05).max(1e-9) * 100.0;
    out.push_str(&format!(
        "AC spread {:.1} W ({:.1} %; paper vxorps: 21 W / 7.6 %), RAPL core spread {:.2} % \
         (paper: within 0.08 %)\n",
        r.ac_w.mean_spread(),
        ac_rel,
        rapl_rel
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Config {
        Config { blocks: 36, block_s: 0.1 }
    }

    #[test]
    fn vxorps_ac_separation_matches_fig10a() {
        let r = run(&quick(), 91, KernelClass::VXorps);
        let spread = r.ac_w.mean_spread();
        assert!((spread - 21.0).abs() < 4.0, "AC spread {spread:.1} W");
        // "with no overlap in distributions".
        assert!(!r.ac_w.distributions_overlap(), "AC weight classes must separate");
        // Ordering 0 < 0.5 < 1.
        let (a, b, c) = r.ac_w.means();
        assert!(a < b && b < c);
    }

    #[test]
    fn vxorps_rapl_is_blind_fig10b() {
        let r = run(&quick(), 92, KernelClass::VXorps);
        let (_, mid, _) = r.rapl_core0_w.means();
        let rel = r.rapl_core0_w.mean_spread() / mid;
        assert!(rel < 0.005, "RAPL core relative spread {rel:.5}");
        assert!(r.rapl_core0_w.distributions_overlap(), "RAPL distributions must overlap");
    }

    #[test]
    fn shr_barely_shows_even_at_the_wall() {
        let r = run(&quick(), 93, KernelClass::Shr);
        let (_, mid, _) = r.ac_w.means();
        let rel = r.ac_w.mean_spread() / mid;
        // Paper: "much closer, within 0.9 %".
        assert!(rel < 0.012, "shr AC relative spread {rel:.4}");
    }

    #[test]
    #[should_panic(expected = "vxorps or shr")]
    fn other_kernels_are_rejected() {
        let _ = run(&quick(), 94, KernelClass::AddPd);
    }
}
