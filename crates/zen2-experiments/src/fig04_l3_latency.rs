//! Fig. 4 — L3-cache latencies in a mixed-frequency setup on one CCX.
//!
//! Pointer chasing (Molka et al.) with hardware prefetchers disabled and
//! huge pages; one reading core per CCX while the other cores spin at a
//! configured frequency. The paper reports the *minimum* over repeated
//! runs to filter OS/hardware interference.
//!
//! Each of the nine cells is a declarative [`Scenario`] — the workload
//! placement, the DVFS settle and the repeated [`Probe::L3LatencyNs`]
//! reads are all recorded as data — and the matrix runs as one
//! [`Session`] batch.

use crate::report::Table;
use crate::seeds;
use crate::Scale;
use serde::Serialize;
use zen2_isa::{KernelClass, OperandWeight};
use zen2_sim::time::{Ns, MILLISECOND};
use zen2_sim::{Case, Probe, Run, Scenario, Session, SimConfig, Window};
use zen2_topology::{CoreId, ThreadId};

/// The swept frequencies (MHz), as in Fig. 4.
pub const FREQS_MHZ: [u32; 3] = [1500, 2200, 2500];

/// Paper Fig. 4 reference latencies in ns: rows = reading-core frequency,
/// columns = frequency of the remaining cores.
pub const PAPER_NS: [[f64; 3]; 3] = [[25.2, 22.0, 21.2], [17.2, 17.2, 17.2], [15.2, 15.2, 15.2]];

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Repetitions per cell (minimum taken, as in the paper).
    pub repetitions: usize,
}

impl Config {
    /// Scaled configuration.
    pub fn new(scale: Scale) -> Self {
        Self { repetitions: scale.pick(3, 10) }
    }
}

/// Measured matrix.
///
/// Note on the (2.2 GHz reader, 2.5 GHz others) cell: a naive two-domain
/// model with the reader at its *set* frequency predicts ~16.4 ns where
/// the paper measured 17.2 ns. Our reproduction measures the reader at its
/// *coupling-reduced* effective frequency (2.0 GHz, Table I), which lands
/// at ~17.4 ns — the CCX divider mechanism explains the paper's cell.
#[derive(Debug, Clone, Serialize)]
pub struct Fig4Result {
    /// Minimum pointer-chase L3 latency (ns) per cell.
    pub measured_ns: [[f64; 3]; 3],
    /// Worst relative deviation from the paper across all cells.
    pub worst_rel_err: f64,
    /// Deviation of the (2.2, 2.5) cell that the naive model misses.
    pub outlier_cell_rel_err: f64,
}

/// DVFS settle time before the first latency read.
const SETTLE_NS: Ns = 20 * MILLISECOND;

/// Builds one cell's scenario: the reader core runs the chase, the other
/// CCX cores run `while(1)`, and the latency is read once per repetition
/// after the transitions settle.
pub fn cell_scenario(cfg: &Config, reader_mhz: u32, others_mhz: u32) -> Scenario {
    let mut sc = Scenario::new();
    let mut at = sc.at(0);
    for t in 0..8u32 {
        let class = if t < 2 { KernelClass::PointerChase } else { KernelClass::BusyWait };
        at = at
            .workload(ThreadId(t), class, OperandWeight::HALF)
            .pstate(ThreadId(t), if t < 2 { reader_mhz } else { others_mhz });
    }
    for rep in 0..cfg.repetitions {
        sc.probe(
            format!("l3_{rep}"),
            Probe::L3LatencyNs(CoreId(0)),
            Window::at(SETTLE_NS + (rep as Ns + 1) * MILLISECOND),
        );
    }
    sc
}

/// Reduces one cell's [`Run`] to the paper's minimum-over-repetitions.
fn reduce(cfg: &Config, run: &Run) -> f64 {
    (0..cfg.repetitions).map(|rep| run.nanos(&format!("l3_{rep}"))).fold(f64::INFINITY, f64::min)
}

/// Runs the full 3×3 matrix as one [`Session`] batch.
pub fn run(cfg: &Config, seed: u64) -> Fig4Result {
    let mut cases = Vec::new();
    for (i, &reader) in FREQS_MHZ.iter().enumerate() {
        for (j, &others) in FREQS_MHZ.iter().enumerate() {
            cases.push(Case::new(
                format!("reader{reader}-others{others}"),
                SimConfig::epyc_7502_2s(),
                cell_scenario(cfg, reader, others),
                seeds::child(seed, (i * 3 + j) as u64),
            ));
        }
    }
    let runs = Session::new().run(&cases).expect("fig04 scenarios validate");
    let mut measured = [[0.0; 3]; 3];
    for (flat, run) in runs.iter().enumerate() {
        measured[flat / 3][flat % 3] = reduce(cfg, run);
    }
    let mut worst = 0.0f64;
    for (row, paper_row) in measured.iter().zip(&PAPER_NS) {
        for (&cell, &paper) in row.iter().zip(paper_row) {
            worst = worst.max((cell - paper).abs() / paper);
        }
    }
    let outlier = (measured[1][2] - PAPER_NS[1][2]).abs() / PAPER_NS[1][2];
    Fig4Result { measured_ns: measured, worst_rel_err: worst, outlier_cell_rel_err: outlier }
}

/// Renders the paper-style matrix.
pub fn render(result: &Fig4Result) -> String {
    let mut out = tables(result)[0].render();
    out.push_str(&format!(
        "worst deviation {:.1}% (documented 2.2/2.5 cell: {:.1}%)\n",
        result.worst_rel_err * 100.0,
        result.outlier_cell_rel_err * 100.0
    ));
    out
}

/// The matrix as a [`Table`] (for text, CSV, or JSON output).
pub fn tables(result: &Fig4Result) -> Vec<Table> {
    let mut t = Table::new(
        "Fig. 4 — L3 latency [ns] in a mixed-frequency CCX, paper / measured",
        &["reader \\ others", "1.5 GHz", "2.2 GHz", "2.5 GHz"],
    );
    for (i, &reader) in FREQS_MHZ.iter().enumerate() {
        let mut row = vec![format!("{:.1} GHz", reader as f64 / 1000.0)];
        for (&paper, &measured) in PAPER_NS[i].iter().zip(&result.measured_ns[i]) {
            row.push(format!("{paper:.1} / {measured:.1}"));
        }
        t.row(&row);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Config {
        Config { repetitions: 2 }
    }

    #[test]
    fn matrix_matches_fig4_within_four_percent() {
        let r = run(&quick(), 31);
        assert!(r.worst_rel_err < 0.04, "worst {:.3}", r.worst_rel_err);
        // The coupling mechanism explains the cell a naive model misses:
        // reader at an effective 2.0 GHz gives ~17.4 ns vs paper 17.2 ns.
        assert!(r.outlier_cell_rel_err < 0.02, "outlier {:.3}", r.outlier_cell_rel_err);
    }

    #[test]
    fn fast_neighbors_help_slow_readers() {
        // Paper: "the latency to the L3 cache decreases for a core running
        // at 1.5 GHz when other cores in the same CCX apply a higher core
        // frequency".
        let r = run(&quick(), 32);
        assert!(r.measured_ns[0][1] < r.measured_ns[0][0]);
        assert!(r.measured_ns[0][2] < r.measured_ns[0][1]);
    }

    #[test]
    fn reader_frequency_dominates() {
        let r = run(&quick(), 33);
        assert!(r.measured_ns[2][0] < r.measured_ns[1][0]);
        assert!(r.measured_ns[1][0] < r.measured_ns[0][0]);
    }
}
