//! The paper's experiments, one module per table/figure.
//!
//! Every experiment follows the same shape:
//!
//! * a `Config` with the paper's full parameters ([`Scale::Paper`]) and a
//!   cheaper variant for CI and quick runs ([`Scale::Quick`]),
//! * a `run(config, seed)` function that drives `zen2-sim` through the
//!   paper's methodology and returns a serializable result struct,
//! * a `render()` producing the paper-style text table, including the
//!   published reference values next to the measured ones.
//!
//! Sweeps are expressed declaratively: each configuration is a
//! `(SimConfig, Scenario, seed)` [`Case`](zen2_sim::Case) with a
//! deterministic child seed, and the batch executes through a
//! [`Session`] worker pool — no experiment module spawns threads
//! itself, and results are byte-identical regardless of parallelism.
//! The wide-grid modules additionally expose a `run_checkpointed`
//! entry point wired to the uniform `--checkpoint` / `--resume` /
//! `--halt-after` flags ([`CheckpointCli`]); `docs/SWEEPS.md` documents
//! that workflow end to end.
//!
//! | Module | Paper item |
//! |--------|-----------|
//! | [`fig01_green500`]   | Fig. 1 — Green500 efficiency by µarch |
//! | [`fig03_transition`] | Fig. 3 — frequency transition delays (+ §V-B anomaly) |
//! | [`tab1_mixed_freq`]  | Table I — mixed frequencies on one CCX |
//! | [`fig04_l3_latency`] | Fig. 4 — L3 latency under mixed frequencies |
//! | [`fig05_membw`]      | Fig. 5 — I/O-die P-states vs DRAM bandwidth/latency |
//! | [`fig06_firestarter`]| Fig. 6 — FIRESTARTER throttling ± SMT |
//! | [`fig07_idle_power`] | Fig. 7 — idle/C-state power staircase |
//! | [`fig08_wakeup`]     | Fig. 8 — C-state wakeup latencies |
//! | [`fig09_rapl_quality`]| Fig. 9 — RAPL vs AC reference scatter |
//! | [`fig10_hamming`]    | Fig. 10 — operand-weight power ECDFs |
//! | [`sec5a_sibling`]    | §V-A — idle/offline sibling raises core frequency |
//! | [`sec6b_offline`]    | §VI-B — offline threads block package C6 |
//! | [`sec7_update_rate`] | §VII — RAPL counter update interval |
//! | [`ext_manycore`]     | §VIII future work — many-core throttling prediction |
//! | [`ext_cstate_breakeven`] | extension — informed C-state break-even analysis |

pub mod ext_cstate_breakeven;
pub mod ext_manycore;
pub mod fig01_green500;
pub mod fig03_transition;
pub mod fig04_l3_latency;
pub mod fig05_membw;
pub mod fig06_firestarter;
pub mod fig07_idle_power;
pub mod fig08_wakeup;
pub mod fig09_rapl_quality;
pub mod fig10_hamming;
pub mod methodology_bridge;
pub mod report;
pub mod sec5a_sibling;
pub mod sec6b_offline;
pub mod sec7_update_rate;
pub mod seeds;
pub mod tab1_mixed_freq;

use std::path::PathBuf;
use std::sync::Arc;
use zen2_obs::{Heartbeat, JsonlSink, Multi, Recorder, SummarySink};
use zen2_sim::{CheckpointError, CheckpointSpec, Session, ShardRange};

/// Experiment size: the paper's full parameters or a CI-friendly subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced sample counts / durations; minutes of total runtime.
    Quick,
    /// The paper's published parameters.
    Paper,
}

impl Scale {
    /// Parses `--paper` / `--quick` style CLI arguments (quick default).
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--paper") {
            Scale::Paper
        } else {
            Scale::Quick
        }
    }

    /// Picks between the two scale values.
    pub fn pick<T>(self, quick: T, paper: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Paper => paper,
        }
    }
}

/// The uniform checkpoint/resume command-line flags of the wide-grid
/// binaries (`fig06`, `fig07`, `fig09`, `fig10`, `tab1`, `ext_manycore`,
/// `all`):
///
/// * `--checkpoint <path>` — persist the sweep's accumulators to
///   `<path>` at every shard boundary (atomic replace; a kill at any
///   instant leaves a valid checkpoint).
/// * `--resume` — pick the run back up from the checkpoint at `<path>`
///   (a missing file starts fresh, so restart scripts are idempotent).
/// * `--halt-after <n>` — testing aid: halt cleanly after `n`
///   checkpoint saves, exactly as a kill right after the save would.
/// * `--shard-range i/N` — fleet mode: run only shard `i` of an
///   `N`-way contiguous case partition, leaving a range checkpoint for
///   the coordinator (`zen2-fleet`) to merge. Requires `--checkpoint`
///   (the shard's only output is its checkpoint file).
///
/// `docs/SWEEPS.md` documents the workflow end to end.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CheckpointCli {
    /// The `--checkpoint` path, when given.
    pub path: Option<PathBuf>,
    /// Whether `--resume` was passed.
    pub resume: bool,
    /// The `--halt-after` count, when given.
    pub halt_after: Option<usize>,
    /// The `--shard-range` partition slice, when given.
    pub shard: Option<ShardRange>,
}

impl CheckpointCli {
    /// Parses the process arguments (ignoring unrelated flags such as
    /// `--json` and `--paper`).
    ///
    /// # Errors
    /// Errors with a usage message on an incomplete or inconsistent
    /// flag set.
    pub fn from_args() -> Result<Self, String> {
        Self::parse(std::env::args().skip(1))
    }

    fn parse(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut cli = Self::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--checkpoint" => {
                    let path = args.next().ok_or("--checkpoint needs a file path")?;
                    cli.path = Some(PathBuf::from(path));
                }
                "--resume" => cli.resume = true,
                "--halt-after" => {
                    let n = args.next().ok_or("--halt-after needs a shard count")?;
                    cli.halt_after =
                        Some(n.parse().map_err(|_| format!("--halt-after {n:?}: not a count"))?);
                }
                "--shard-range" => {
                    let range = args.next().ok_or("--shard-range needs i/N")?;
                    cli.shard = Some(ShardRange::parse(&range)?);
                }
                _ => {}
            }
        }
        if cli.path.is_none() {
            if cli.resume {
                return Err("--resume requires --checkpoint <path>".into());
            }
            if cli.halt_after.is_some() {
                return Err("--halt-after requires --checkpoint <path>".into());
            }
            if cli.shard.is_some() {
                return Err("--shard-range requires --checkpoint <path> — \
                            a shard's only output is its checkpoint file"
                    .into());
            }
        }
        Ok(cli)
    }

    /// The [`CheckpointSpec`] a single-experiment binary hands its
    /// `run_checkpointed`.
    pub fn spec(&self) -> CheckpointSpec {
        CheckpointSpec {
            path: self.path.clone(),
            resume: self.resume,
            halt_after: self.halt_after,
            shard: self.shard,
        }
    }

    /// The per-experiment spec the `all` binary derives: the configured
    /// path with `-<experiment>` appended, so one `--checkpoint` prefix
    /// yields one file per wide-grid experiment. `--halt-after` is a
    /// single-binary testing aid and is not propagated.
    pub fn spec_for(&self, experiment: &str) -> CheckpointSpec {
        let path = self.path.as_ref().map(|p| {
            let mut name = p.as_os_str().to_os_string();
            name.push(format!("-{experiment}"));
            PathBuf::from(name)
        });
        CheckpointSpec { path, resume: self.resume, halt_after: None, shard: self.shard }
    }
}

/// The uniform observability flags of the wide-grid binaries (the same
/// set as [`CheckpointCli`], plus `all`):
///
/// * `--obs <path>` — write the run's telemetry as a JSONL trace to
///   `<path>` and print an aggregate summary table (span durations,
///   cache counters, worker utilization) to stderr at the end.
/// * `--progress` — print rate-limited `done/total … cases/s … eta`
///   heartbeat lines to stderr while the sweep runs.
///
/// Telemetry is out-of-band by construction: results (stdout, `--json`,
/// checkpoints) are byte-identical with or without these flags. See
/// `docs/OBSERVABILITY.md`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObsCli {
    /// The `--obs` trace path, when given.
    pub obs: Option<PathBuf>,
    /// Whether `--progress` was passed.
    pub progress: bool,
}

impl ObsCli {
    /// Parses the process arguments (ignoring unrelated flags).
    ///
    /// # Errors
    /// Errors with a usage message on an incomplete flag.
    pub fn from_args() -> Result<Self, String> {
        Self::parse(std::env::args().skip(1))
    }

    fn parse(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut cli = Self::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--obs" => {
                    let path = args.next().ok_or("--obs needs a file path")?;
                    cli.obs = Some(PathBuf::from(path));
                }
                "--progress" => cli.progress = true,
                _ => {}
            }
        }
        Ok(cli)
    }

    /// Builds the sink stack these flags ask for — `None` when neither
    /// flag was passed (the session then runs with zero telemetry
    /// overhead).
    ///
    /// # Errors
    /// Errors when the `--obs` trace file cannot be created.
    pub fn stack(&self) -> Result<Option<ObsStack>, String> {
        let mut sinks: Vec<Arc<dyn Recorder>> = Vec::new();
        let mut jsonl = None;
        let mut summary = None;
        if let Some(path) = &self.obs {
            let sink = Arc::new(
                JsonlSink::create(path).map_err(|e| format!("--obs {}: {e}", path.display()))?,
            );
            sinks.push(sink.clone());
            jsonl = Some(sink);
            let agg = Arc::new(SummarySink::new());
            sinks.push(agg.clone());
            summary = Some(agg);
        }
        if self.progress {
            sinks.push(Arc::new(Heartbeat::new()));
        }
        if sinks.is_empty() {
            return Ok(None);
        }
        Ok(Some(ObsStack { recorder: Arc::new(Multi::new(sinks)), jsonl, summary }))
    }
}

/// The live sink stack behind one `--obs` / `--progress` invocation:
/// attach it to the session before the run, [`ObsStack::finish`] it
/// after.
pub struct ObsStack {
    recorder: Arc<Multi>,
    jsonl: Option<Arc<JsonlSink>>,
    summary: Option<Arc<SummarySink>>,
}

impl ObsStack {
    /// Attaches the stack to a session.
    pub fn attach(&self, session: Session) -> Session {
        session.recorder(self.recorder.clone())
    }

    /// Flushes the JSONL trace and prints the summary table to stderr.
    ///
    /// # Errors
    /// Errors when the trace file failed to write.
    pub fn finish(&self) -> Result<(), String> {
        if let Some(jsonl) = &self.jsonl {
            jsonl.finish().map_err(|e| format!("writing telemetry trace: {e}"))?;
        }
        if let Some(summary) = &self.summary {
            eprint!("{}", summary.render());
        }
        Ok(())
    }
}

/// Builds the session a wide-grid binary streams through, honoring the
/// optional `--workers <n>` / `--shard-size <n>` flags. Results never
/// depend on either (the determinism contract); the flags control
/// parallelism and — because checkpoints are cut at shard boundaries,
/// every `workers × shard_size` cases — checkpoint granularity.
///
/// # Errors
/// Errors with a usage message on a malformed flag.
pub fn session_from_args() -> Result<Session, String> {
    let mut session = Session::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let take = |args: &mut dyn Iterator<Item = String>, flag: &str| {
            let n = args.next().ok_or(format!("{flag} needs a count"))?;
            n.parse::<usize>().map_err(|_| format!("{flag} {n:?}: not a count"))
        };
        match arg.as_str() {
            "--workers" => session = session.workers(take(&mut args, "--workers")?),
            "--shard-size" => session = session.shard_size(take(&mut args, "--shard-size")?),
            _ => {}
        }
    }
    Ok(session)
}

/// The `main` of every checkpointed wide-grid binary: parses the
/// checkpoint, observability, and session flags, runs the experiment,
/// and either emits the report (text or `--json`, via [`report::emit`])
/// or explains the outcome — usage errors exit 2, checkpoint failures
/// exit 1, and a deliberate `--halt-after` halt exits 0 with a resume
/// hint on stderr. `--obs` / `--progress` telemetry goes to the trace
/// file and stderr, never stdout, so report output is unaffected.
pub fn run_checkpointed_bin<R>(
    name: &str,
    run: impl FnOnce(&Session, &CheckpointSpec) -> Result<Option<R>, CheckpointError>,
    render: impl FnOnce(&R) -> String,
    tables: impl FnOnce(&R) -> Vec<report::Table>,
) {
    let usage = |message: String| -> ! {
        eprintln!("{name}: {message}");
        std::process::exit(2);
    };
    let cli = CheckpointCli::from_args().unwrap_or_else(|message| usage(message));
    let obs = ObsCli::from_args().unwrap_or_else(|message| usage(message));
    let mut session = session_from_args().unwrap_or_else(|message| usage(message));
    let stack = obs.stack().unwrap_or_else(|message| usage(message));
    if let Some(stack) = &stack {
        session = stack.attach(session);
    }
    let outcome = run(&session, &cli.spec());
    if let Some(stack) = &stack {
        if let Err(message) = stack.finish() {
            eprintln!("{name}: {message}");
            std::process::exit(1);
        }
    }
    match outcome {
        Ok(Some(result)) => report::emit(|| render(&result), || tables(&result)),
        Ok(None) => {
            let path = cli.path.as_deref().unwrap_or_else(|| std::path::Path::new("<path>"));
            match cli.shard {
                // A shard run reports nothing even when its own range is
                // done: only the merged whole renders (zen2-fleet).
                Some(shard) if cli.halt_after.is_none() => eprintln!(
                    "{name}: shard {shard} done; merge the range checkpoints \
                     (zen2-fleet) to produce the report"
                ),
                _ => eprintln!(
                    "{name}: halted mid-sweep (--halt-after); \
                     resume with --checkpoint {} --resume",
                    path.display()
                ),
            }
        }
        Err(error) => {
            eprintln!("{name}: {error}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_picks() {
        assert_eq!(Scale::Quick.pick(1, 100), 1);
        assert_eq!(Scale::Paper.pick(1, 100), 100);
    }

    fn parse(args: &[&str]) -> Result<CheckpointCli, String> {
        CheckpointCli::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn checkpoint_cli_parses_the_flag_triple() {
        let cli = parse(&["--json", "--checkpoint", "ck.json", "--resume"]).unwrap();
        assert_eq!(cli.path.as_deref(), Some(std::path::Path::new("ck.json")));
        assert!(cli.resume);
        assert_eq!(cli.halt_after, None);
        let cli = parse(&["--checkpoint", "ck", "--halt-after", "3"]).unwrap();
        assert_eq!(cli.halt_after, Some(3));
        assert_eq!(parse(&["--paper"]).unwrap(), CheckpointCli::default());
    }

    #[test]
    fn checkpoint_cli_rejects_incomplete_flags() {
        assert!(parse(&["--checkpoint"]).is_err());
        assert!(parse(&["--resume"]).unwrap_err().contains("--checkpoint"));
        assert!(parse(&["--halt-after", "2"]).unwrap_err().contains("--checkpoint"));
        assert!(parse(&["--checkpoint", "ck", "--halt-after", "soon"]).is_err());
        assert!(parse(&["--shard-range", "0/3"]).unwrap_err().contains("--checkpoint"));
        assert!(parse(&["--checkpoint", "ck", "--shard-range", "3/3"])
            .unwrap_err()
            .contains("i/N"));
    }

    #[test]
    fn checkpoint_cli_parses_shard_ranges() {
        let cli = parse(&["--checkpoint", "ck", "--shard-range", "1/3"]).unwrap();
        assert_eq!(cli.shard, Some(ShardRange { index: 1, of: 3 }));
        assert_eq!(cli.spec().shard, Some(ShardRange { index: 1, of: 3 }));
        // `all` propagates the shard to every per-experiment spec.
        assert_eq!(cli.spec_for("fig09").shard, Some(ShardRange { index: 1, of: 3 }));
    }

    fn parse_obs(args: &[&str]) -> Result<ObsCli, String> {
        ObsCli::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn obs_cli_parses_the_flag_pair() {
        let cli = parse_obs(&["--json", "--obs", "trace.jsonl", "--progress"]).unwrap();
        assert_eq!(cli.obs.as_deref(), Some(std::path::Path::new("trace.jsonl")));
        assert!(cli.progress);
        assert_eq!(parse_obs(&["--paper"]).unwrap(), ObsCli::default());
        assert!(parse_obs(&["--obs"]).is_err(), "--obs needs a path");
    }

    #[test]
    fn obs_stack_is_absent_without_flags() {
        assert!(ObsCli::default().stack().unwrap().is_none());
        let progress_only = ObsCli { obs: None, progress: true };
        let stack = progress_only.stack().unwrap().expect("progress builds a stack");
        stack.finish().unwrap();
    }

    #[test]
    fn spec_for_appends_the_experiment_name() {
        let cli = parse(&["--checkpoint", "run/ck", "--resume", "--halt-after", "2"]).unwrap();
        let spec = cli.spec_for("fig09");
        assert_eq!(spec.path.as_deref(), Some(std::path::Path::new("run/ck-fig09")));
        assert!(spec.resume);
        assert_eq!(spec.halt_after, None, "halt-after is not propagated to `all`");
        assert_eq!(cli.spec().halt_after, Some(2));
    }
}
