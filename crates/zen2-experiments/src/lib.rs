//! The paper's experiments, one module per table/figure.
//!
//! Every experiment follows the same shape:
//!
//! * a `Config` with the paper's full parameters ([`Scale::Paper`]) and a
//!   cheaper variant for CI and quick runs ([`Scale::Quick`]),
//! * a `run(config, seed)` function that drives `zen2-sim` through the
//!   paper's methodology and returns a serializable result struct,
//! * a `render()` producing the paper-style text table, including the
//!   published reference values next to the measured ones.
//!
//! Sweeps are expressed declaratively: each configuration is a
//! `(SimConfig, Scenario, seed)` [`Case`](zen2_sim::Case) with a
//! deterministic child seed, and the batch executes through a
//! [`Session`](zen2_sim::Session) worker pool — no experiment module
//! spawns threads itself, and results are byte-identical regardless of
//! parallelism.
//!
//! | Module | Paper item |
//! |--------|-----------|
//! | [`fig01_green500`]   | Fig. 1 — Green500 efficiency by µarch |
//! | [`fig03_transition`] | Fig. 3 — frequency transition delays (+ §V-B anomaly) |
//! | [`tab1_mixed_freq`]  | Table I — mixed frequencies on one CCX |
//! | [`fig04_l3_latency`] | Fig. 4 — L3 latency under mixed frequencies |
//! | [`fig05_membw`]      | Fig. 5 — I/O-die P-states vs DRAM bandwidth/latency |
//! | [`fig06_firestarter`]| Fig. 6 — FIRESTARTER throttling ± SMT |
//! | [`fig07_idle_power`] | Fig. 7 — idle/C-state power staircase |
//! | [`fig08_wakeup`]     | Fig. 8 — C-state wakeup latencies |
//! | [`fig09_rapl_quality`]| Fig. 9 — RAPL vs AC reference scatter |
//! | [`fig10_hamming`]    | Fig. 10 — operand-weight power ECDFs |
//! | [`sec5a_sibling`]    | §V-A — idle/offline sibling raises core frequency |
//! | [`sec6b_offline`]    | §VI-B — offline threads block package C6 |
//! | [`sec7_update_rate`] | §VII — RAPL counter update interval |
//! | [`ext_manycore`]     | §VIII future work — many-core throttling prediction |
//! | [`ext_cstate_breakeven`] | extension — informed C-state break-even analysis |

pub mod ext_cstate_breakeven;
pub mod ext_manycore;
pub mod fig01_green500;
pub mod fig03_transition;
pub mod fig04_l3_latency;
pub mod fig05_membw;
pub mod fig06_firestarter;
pub mod fig07_idle_power;
pub mod fig08_wakeup;
pub mod fig09_rapl_quality;
pub mod fig10_hamming;
pub mod methodology_bridge;
pub mod report;
pub mod sec5a_sibling;
pub mod sec6b_offline;
pub mod sec7_update_rate;
pub mod seeds;
pub mod tab1_mixed_freq;

/// Experiment size: the paper's full parameters or a CI-friendly subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced sample counts / durations; minutes of total runtime.
    Quick,
    /// The paper's published parameters.
    Paper,
}

impl Scale {
    /// Parses `--paper` / `--quick` style CLI arguments (quick default).
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--paper") {
            Scale::Paper
        } else {
            Scale::Quick
        }
    }

    /// Picks between the two scale values.
    pub fn pick<T>(self, quick: T, paper: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Paper => paper,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_picks() {
        assert_eq!(Scale::Quick.pick(1, 100), 1);
        assert_eq!(Scale::Paper.pick(1, 100), 100);
    }
}
