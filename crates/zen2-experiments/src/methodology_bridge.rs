//! Small glue between the paper's software methodology and the simulator.

use rand::Rng;

/// The performance-polling benchmark detects a completed transition only
/// at the granularity of its minimal-workload iterations (~µs): uniform
/// detection lag added to every measured delay.
pub fn detection_noise_ns<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    rng.gen_range(0.0..2_000.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn noise_is_bounded_microseconds() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        for _ in 0..1000 {
            let n = detection_noise_ns(&mut rng);
            assert!((0.0..2_000.0).contains(&n));
        }
    }
}
