//! §VII — RAPL counter update rate.
//!
//! "We measured an update rate of 1 ms for RAPL by polling the MSRs via
//! the msr kernel module." The benchmark polls the package energy MSR far
//! faster than the update rate and records the spacing of distinct values.

use crate::report::Table;
use serde::Serialize;
use zen2_isa::{KernelClass, OperandWeight};
use zen2_msr::address;
use zen2_sim::time::MICROSECOND;
use zen2_sim::{SimConfig, System};
use zen2_topology::ThreadId;

/// Full experiment output.
#[derive(Debug, Clone, Serialize)]
pub struct Sec7Result {
    /// Observed intervals between counter changes, µs.
    pub intervals_us: Vec<f64>,
    /// Mean interval, µs.
    pub mean_us: f64,
}

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Poll period in µs.
    pub poll_period_us: u64,
    /// Total polling duration in ms.
    pub duration_ms: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self { poll_period_us: 50, duration_ms: 50 }
    }
}

/// Polls the package-energy MSR and measures update spacing.
pub fn run(cfg: &Config, seed: u64) -> Sec7Result {
    let mut sys = System::new(SimConfig::epyc_7502_2s(), seed);
    // Keep the package busy so energy accrues every update.
    for t in 0..16u32 {
        sys.set_workload(ThreadId(t), KernelClass::BusyWait, OperandWeight::HALF);
    }
    sys.run_for_secs(0.01);

    let mut intervals = Vec::new();
    let mut last_value = None;
    let mut last_change_ns = None;
    let steps = cfg.duration_ms * 1000 / cfg.poll_period_us;
    for _ in 0..steps {
        sys.run_for_ns(cfg.poll_period_us * MICROSECOND);
        sys.sync_rapl_msrs();
        let v = sys.msrs().read(ThreadId(0), address::PKG_ENERGY_STAT).expect("rdmsr works");
        if last_value != Some(v) {
            if let (Some(_), Some(t)) = (last_value, last_change_ns) {
                intervals.push((sys.now_ns() - t) as f64 / 1000.0);
            }
            last_value = Some(v);
            last_change_ns = Some(sys.now_ns());
        }
    }
    let mean_us = zen2_sim::methodology::mean(&intervals);
    Sec7Result { intervals_us: intervals, mean_us }
}

/// Renders the summary.
pub fn render(r: &Sec7Result) -> String {
    tables(r).iter().map(Table::render).collect()
}

/// The summary as a [`Table`] (for text, CSV, or JSON output).
pub fn tables(r: &Sec7Result) -> Vec<Table> {
    let mut t = Table::new(
        "SS VII — RAPL update interval (paper: 1 ms)",
        &["observed updates", "mean interval [us]"],
    );
    t.row(&[format!("{}", r.intervals_us.len()), format!("{:.0}", r.mean_us)]);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_interval_is_one_millisecond() {
        let r = run(&Config::default(), 121);
        assert!(r.intervals_us.len() >= 20, "updates observed: {}", r.intervals_us.len());
        assert!((r.mean_us - 1000.0).abs() < 60.0, "mean {} us", r.mean_us);
        for &i in &r.intervals_us {
            assert!((i - 1000.0).abs() < 120.0, "interval {i} us");
        }
    }

    #[test]
    fn faster_polling_does_not_reveal_faster_updates() {
        let r = run(&Config { poll_period_us: 10, duration_ms: 20 }, 122);
        assert!((r.mean_us - 1000.0).abs() < 60.0, "mean {} us", r.mean_us);
    }
}
