//! Fig. 1 — power efficiency of x86 systems in the 2021/07 Green500 list.
//!
//! This is context data, not a measurement on the test system. The
//! original figure aggregates the public Green500 list; since the full
//! list is not redistributable here, a representative sample per
//! architecture (with the ranges visible in the paper's box plot) is
//! embedded. Substitution documented in DESIGN.md.

use crate::report::Table;
use serde::Serialize;
use zen2_sim::methodology::{mean, quantile};

/// One architecture's efficiency samples (GFlops/W).
#[derive(Debug, Clone, Serialize)]
pub struct ArchEfficiency {
    /// Architecture label as in the figure.
    pub arch: &'static str,
    /// Per-system efficiencies, GFlops/W.
    pub systems: Vec<f64>,
}

/// The embedded representative dataset (architectures with >5 systems in
/// the 2021/07 list, as in the figure).
pub fn dataset() -> Vec<ArchEfficiency> {
    vec![
        ArchEfficiency {
            arch: "AMD Zen 2 (Rome)",
            systems: vec![1.8, 2.3, 2.6, 2.9, 3.1, 3.4, 3.7, 4.0, 4.4, 4.9, 5.4],
        },
        ArchEfficiency {
            arch: "Intel Cascade Lake",
            systems: vec![1.1, 1.5, 1.9, 2.2, 2.5, 2.8, 3.1, 3.4, 3.8],
        },
        ArchEfficiency { arch: "Intel Xeon Phi", systems: vec![2.6, 2.9, 3.2, 3.5, 3.8, 4.3] },
        ArchEfficiency {
            arch: "Intel Skylake",
            systems: vec![0.9, 1.3, 1.7, 2.0, 2.3, 2.6, 2.9, 3.2],
        },
        ArchEfficiency { arch: "Intel Broadwell", systems: vec![0.7, 1.0, 1.3, 1.6, 1.9, 2.2] },
        ArchEfficiency { arch: "Intel Haswell", systems: vec![0.5, 0.8, 1.1, 1.4, 1.7, 2.0] },
    ]
}

/// Summary statistics per architecture.
#[derive(Debug, Clone, Serialize)]
pub struct ArchSummary {
    /// Architecture label.
    pub arch: &'static str,
    /// Number of systems.
    pub count: usize,
    /// Minimum efficiency.
    pub min: f64,
    /// Median efficiency.
    pub median: f64,
    /// Maximum efficiency.
    pub max: f64,
    /// Mean efficiency.
    pub mean: f64,
}

/// Computes the per-architecture summaries.
pub fn run() -> Vec<ArchSummary> {
    dataset()
        .into_iter()
        .map(|a| ArchSummary {
            arch: a.arch,
            count: a.systems.len(),
            min: a.systems.iter().copied().fold(f64::INFINITY, f64::min),
            median: quantile(&a.systems, 0.5),
            max: a.systems.iter().copied().fold(0.0, f64::max),
            mean: mean(&a.systems),
        })
        .collect()
}

/// Renders the Fig. 1 summary.
pub fn render(summaries: &[ArchSummary]) -> String {
    tables(summaries).iter().map(Table::render).collect()
}

/// The summary as a [`Table`] (for text, CSV, or JSON output).
pub fn tables(summaries: &[ArchSummary]) -> Vec<Table> {
    let mut t = Table::new(
        "Fig. 1 — Green500 2021/07 power efficiency by x86 architecture [GFlops/W]",
        &["architecture", "systems", "min", "median", "max", "mean"],
    );
    for s in summaries {
        t.row(&[
            s.arch.to_string(),
            format!("{}", s.count),
            format!("{:.1}", s.min),
            format!("{:.1}", s.median),
            format!("{:.1}", s.max),
            format!("{:.2}", s.mean),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rome_tops_the_ranking() {
        let s = run();
        let rome = s.iter().find(|a| a.arch.contains("Rome")).unwrap();
        for other in s.iter().filter(|a| !a.arch.contains("Rome")) {
            assert!(rome.max >= other.max, "{} beats Rome", other.arch);
            assert!(rome.median >= other.median);
        }
        // The figure's x-axis tops out near 5.4 GFlops/W for Rome.
        assert!(rome.max > 5.0 && rome.max < 6.0);
    }

    #[test]
    fn all_architectures_have_more_than_five_systems() {
        for s in run() {
            assert!(s.count >= 6, "{} has {}", s.arch, s.count);
        }
    }

    #[test]
    fn haswell_is_the_least_efficient() {
        let s = run();
        let haswell = s.iter().find(|a| a.arch.contains("Haswell")).unwrap();
        for other in &s {
            assert!(haswell.median <= other.median);
        }
    }

    #[test]
    fn render_lists_all_architectures() {
        let out = render(&run());
        for arch in ["Rome", "Cascade Lake", "Xeon Phi", "Skylake", "Broadwell", "Haswell"] {
            assert!(out.contains(arch), "{arch} missing");
        }
    }
}
