//! Fig. 6 — frequency limitations for high-throughput workloads
//! (FIRESTARTER 2, ± SMT).
//!
//! "Before we run our tests, we execute FIRESTARTER for 15 min in order to
//! create a stable temperature. We run our tests at nominal frequency for
//! two minutes and measure frequency and throughput with perf stat ...
//! We exclude data for the first 5 s and last 2 s."
//!
//! Both SMT modes are declarative [`Scenario`]s on one SMT [`Axis`] of a
//! [`Sweep`] streamed through the [`Session`] worker pool: the pre-heat,
//! the perf-stat sampling cadence, the AC window and the trailing RAPL
//! poll are all recorded as data, and the per-mode rows come back
//! through a [`GroupedStats`] bucket keyed by the SMT axis.

use crate::report::{compare, compare_precise, Table};
use crate::Scale;
use serde::Serialize;
use zen2_isa::{KernelClass, OperandWeight};
use zen2_sim::checkpoint::{run_resumable, CheckpointState};
use zen2_sim::methodology::{mean, std_dev};
use zen2_sim::perf::ThreadCounters;
use zen2_sim::time::from_secs;
use zen2_sim::{
    Axis, Checkpoint, CheckpointError, CheckpointSpec, GroupedStats, Json, Probe, Run, Scenario,
    Session, SimConfig, Snapshot, SnapshotError, Sweep, Window,
};
use zen2_topology::{SocketId, ThreadId};

/// Paper reference values for one SMT mode.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct PaperRef {
    /// Mean core frequency, GHz.
    pub freq_ghz: f64,
    /// Core IPC.
    pub ipc: f64,
    /// System AC power, W.
    pub ac_w: f64,
    /// RAPL package reading per socket, W.
    pub rapl_pkg_w: f64,
}

/// Paper values with SMT (both hardware threads per core).
pub const PAPER_SMT: PaperRef =
    PaperRef { freq_ghz: 2.03, ipc: 3.56, ac_w: 509.0, rapl_pkg_w: 170.0 };
/// Paper values without SMT.
pub const PAPER_NO_SMT: PaperRef =
    PaperRef { freq_ghz: 2.10, ipc: 3.23, ac_w: 489.0, rapl_pkg_w: 170.0 };

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Measured run duration in seconds (paper: 120 s).
    pub duration_s: f64,
    /// perf-stat sampling interval (paper: 1 s).
    pub sample_interval_s: f64,
    /// Run with Core Performance Boost enabled (paper: "almost no
    /// influence").
    pub boost: bool,
}

impl Config {
    /// Scaled configuration.
    pub fn new(scale: Scale) -> Self {
        Self {
            duration_s: scale.pick(2.0, 120.0),
            sample_interval_s: scale.pick(0.2, 1.0),
            boost: false,
        }
    }
}

/// Measured values for one SMT mode.
#[derive(Debug, Clone, Serialize)]
pub struct ModeResult {
    /// Whether both hardware threads per core were used.
    pub smt: bool,
    /// Mean effective core frequency, GHz.
    pub freq_ghz: f64,
    /// Standard deviation of the per-interval frequency samples, MHz.
    pub freq_std_mhz: f64,
    /// Mean core IPC.
    pub ipc: f64,
    /// Standard deviation of per-interval IPC samples.
    pub ipc_std: f64,
    /// Mean system AC power over the trimmed window, W.
    pub ac_w: f64,
    /// Mean RAPL package reading per socket, W.
    pub rapl_pkg_w: f64,
    /// True (simulator ground-truth) package power per socket, W.
    pub true_pkg_w: f64,
}

/// Full experiment output.
#[derive(Debug, Clone, Serialize)]
pub struct Fig6Result {
    /// With SMT.
    pub smt: ModeResult,
    /// Without SMT.
    pub no_smt: ModeResult,
}

/// A mode's reduced result snapshots exactly (for checkpoint/resume —
/// the [`GroupedStats`] accumulator here is `Option<ModeResult>`).
impl Snapshot for ModeResult {
    fn snapshot(&self) -> Json {
        Json::obj([
            ("smt", Json::Bool(self.smt)),
            ("freq_ghz", Json::f64(self.freq_ghz)),
            ("freq_std_mhz", Json::f64(self.freq_std_mhz)),
            ("ipc", Json::f64(self.ipc)),
            ("ipc_std", Json::f64(self.ipc_std)),
            ("ac_w", Json::f64(self.ac_w)),
            ("rapl_pkg_w", Json::f64(self.rapl_pkg_w)),
            ("true_pkg_w", Json::f64(self.true_pkg_w)),
        ])
    }

    fn restore(json: &Json) -> Result<Self, SnapshotError> {
        Ok(Self {
            smt: json.get("smt")?.as_bool()?,
            freq_ghz: json.get("freq_ghz")?.as_f64()?,
            freq_std_mhz: json.get("freq_std_mhz")?.as_f64()?,
            ipc: json.get("ipc")?.as_f64()?,
            ipc_std: json.get("ipc_std")?.as_f64()?,
            ac_w: json.get("ac_w")?.as_f64()?,
            rapl_pkg_w: json.get("rapl_pkg_w")?.as_f64()?,
            true_pkg_w: json.get("true_pkg_w")?.as_f64()?,
        })
    }
}

/// Measurement window start: 0.2 s settling + pre-heat + 0.1 s re-settle.
const T_MEASURE_S: f64 = 0.3;

/// Builds one SMT mode's scenario: FIRESTARTER everywhere at t = 0, the
/// paper's 15-minute pre-heat fast-forwarded at 0.2 s, then a sampled
/// measurement window followed by a 0.5 s RAPL poll.
fn scenario(cfg: &Config, smt: bool) -> Scenario {
    let mut sc = Scenario::new();
    let step = if smt { 1 } else { 2 };
    let mut at = sc.at(0);
    for t in (0..128u32).step_by(step) {
        at = at.workload(ThreadId(t), KernelClass::Firestarter, OperandWeight::HALF);
    }
    sc.at_secs(0.2).preheat();

    let samples = (cfg.duration_s / cfg.sample_interval_s).round() as u64;
    let t_end = T_MEASURE_S + samples as f64 * cfg.sample_interval_s;
    let window = Window::span_secs(T_MEASURE_S, t_end);
    let every = from_secs(cfg.sample_interval_s);
    sc.probe("ac", Probe::AcTrueMeanW, window);
    sc.probe("perf0", Probe::CounterSeries { thread: ThreadId(0), every }, window);
    sc.probe("perf1", Probe::CounterSeries { thread: ThreadId(1), every }, window);
    sc.probe("rapl", Probe::RaplW, Window::span_secs(t_end, t_end + 0.5));
    sc.probe("pkg0", Probe::PkgTrueW(SocketId(0)), Window::at_secs(t_end + 0.5));
    sc
}

/// Reduces one mode's [`Run`] to the paper's table entries.
fn reduce(run: &Run, smt: bool) -> ModeResult {
    let perf0 = run.counter_series("perf0");
    let perf1 = run.counter_series("perf1");
    let mut freqs = Vec::with_capacity(perf0.len() - 1);
    let mut ipcs = Vec::with_capacity(perf0.len() - 1);
    for k in 1..perf0.len() {
        freqs.push(ThreadCounters::effective_ghz(&perf0[k - 1], &perf0[k], 2.5));
        // Core IPC: both threads' instructions over the core's cycles.
        let instr = (perf0[k].instructions - perf0[k - 1].instructions)
            + if smt { perf1[k].instructions - perf1[k - 1].instructions } else { 0.0 };
        let cycles = perf0[k].cycles - perf0[k - 1].cycles;
        ipcs.push(instr / cycles);
    }
    let (rapl_pkg_sum, _) = run.watts_pair("rapl");
    ModeResult {
        smt,
        freq_ghz: mean(&freqs),
        freq_std_mhz: if freqs.len() > 1 { std_dev(&freqs) * 1000.0 } else { 0.0 },
        ipc: mean(&ipcs),
        ipc_std: if ipcs.len() > 1 { std_dev(&ipcs) } else { 0.0 },
        ac_w: run.watts("ac"),
        rapl_pkg_w: rapl_pkg_sum / 2.0,
        true_pkg_w: run.watts("pkg0"),
    }
}

/// The SMT axis's values, in presentation order: `(label, smt)`. The
/// single source of truth for [`sweep`]'s axis and the per-case SMT
/// flag the sink hands to `reduce`.
const SMT_MODES: [(&str, bool); 2] = [("on", true), ("off", false)];

/// The two SMT modes as a declarative [`Sweep`]: one axis whose values
/// swap in the per-mode scenario ("on" first, matching the paper's
/// presentation order).
pub fn sweep(cfg: &Config, seed: u64) -> Sweep {
    let mut sim_cfg = SimConfig::epyc_7502_2s();
    if cfg.boost {
        sim_cfg.controller.boost_max_mhz = Some(3350);
    }
    let mut axis = Axis::new("smt");
    for (label, smt) in SMT_MODES {
        let sc = scenario(cfg, smt);
        axis = axis.with(label, move |draft| draft.scenario = sc.clone());
    }
    Sweep::new("fig06", sim_cfg).seed(seed).axis(axis)
}

/// Runs both SMT modes through the streaming sweep engine.
pub fn run(cfg: &Config, seed: u64) -> Fig6Result {
    run_with(cfg, seed, &Session::new())
}

/// [`run`] on an explicit session (the worker/shard-invariance hook).
fn run_with(cfg: &Config, seed: u64, session: &Session) -> Fig6Result {
    run_checkpointed(cfg, seed, session, &CheckpointSpec::none())
        .expect("checkpointing disabled")
        .expect("no halt configured")
}

/// [`run`] with checkpoint/resume: persists the per-mode reductions at
/// every shard boundary per `spec` and resumes byte-identically.
/// Returns `None` on a deliberate `--halt-after` halt.
///
/// # Errors
/// Errors when the checkpoint cannot be read, written, or does not
/// belong to this grid.
pub fn run_checkpointed(
    cfg: &Config,
    seed: u64,
    session: &Session,
    spec: &CheckpointSpec,
) -> Result<Option<Fig6Result>, CheckpointError> {
    let sweep = sweep(cfg, seed);
    /// The resumable accumulator: one reduced result per SMT mode.
    struct Modes(GroupedStats<Option<ModeResult>>);
    impl CheckpointState for Modes {
        fn save_into(&self, checkpoint: &mut Checkpoint) {
            checkpoint.set_grouped("modes", &self.0);
        }
        fn restore_from(&mut self, checkpoint: &Checkpoint) -> Result<(), CheckpointError> {
            self.0 = checkpoint.grouped("modes", &self.0)?;
            Ok(())
        }
        fn fold(&mut self, index: usize, run: Run) {
            *self.0.entry(index) = Some(reduce(&run, SMT_MODES[index].1));
        }
    }
    let mut state = Modes(GroupedStats::new(&sweep, &["smt"]));
    if !run_resumable(&sweep, vec![], session, spec, &mut state)? {
        return Ok(None);
    }
    let mode = |label| state.0.get(&[label]).and_then(Clone::clone).expect("both modes streamed");
    Ok(Some(Fig6Result { smt: mode("on"), no_smt: mode("off") }))
}

/// Renders the paper-style comparison.
pub fn render(r: &Fig6Result) -> String {
    let mut out = String::new();
    for t in tables(r) {
        out.push_str(&t.render());
    }
    out.push_str(&format!(
        "true package power (TDP 180 W): SMT {:.1} W, no-SMT {:.1} W — RAPL under-reports\n",
        r.smt.true_pkg_w, r.no_smt.true_pkg_w
    ));
    out
}

/// The summary as [`Table`]s (for text, CSV, or JSON output).
pub fn tables(r: &Fig6Result) -> Vec<Table> {
    let mut t = Table::new(
        "Fig. 6 — FIRESTARTER at nominal 2.5 GHz, paper / measured",
        &["metric", "with SMT", "without SMT"],
    );
    t.row(&[
        "frequency [GHz]".into(),
        compare_precise(PAPER_SMT.freq_ghz, r.smt.freq_ghz, ""),
        compare_precise(PAPER_NO_SMT.freq_ghz, r.no_smt.freq_ghz, ""),
    ]);
    t.row(&[
        "core IPC".into(),
        compare_precise(PAPER_SMT.ipc, r.smt.ipc, ""),
        compare_precise(PAPER_NO_SMT.ipc, r.no_smt.ipc, ""),
    ]);
    t.row(&[
        "AC power [W]".into(),
        compare(PAPER_SMT.ac_w, r.smt.ac_w, ""),
        compare(PAPER_NO_SMT.ac_w, r.no_smt.ac_w, ""),
    ]);
    t.row(&[
        "RAPL package [W]".into(),
        compare(PAPER_SMT.rapl_pkg_w, r.smt.rapl_pkg_w, ""),
        compare(PAPER_NO_SMT.rapl_pkg_w, r.no_smt.rapl_pkg_w, ""),
    ]);
    t.row(&[
        "freq std-dev [MHz]".into(),
        format!("{:.2} (paper 3.04)", r.smt.freq_std_mhz),
        format!("{:.2} (paper 0.82)", r.no_smt.freq_std_mhz),
    ]);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Config {
        Config { duration_s: 1.0, sample_interval_s: 0.2, boost: false }
    }

    #[test]
    fn sweep_engine_matches_materialized_session() {
        // The sweep port must not change results: the same two cases
        // built by hand (as the module did before the sweep engine) and
        // run materialized produce byte-identical paper-comparison
        // output, for more than one worker/shard split.
        use zen2_sim::{sweep::child_seed, Case};
        let cfg = quick();
        let seed = 55;
        let sim_cfg = SimConfig::epyc_7502_2s();
        let cases = vec![
            Case::new("smt", sim_cfg.clone(), scenario(&cfg, true), child_seed(seed, 0)),
            Case::new("no-smt", sim_cfg, scenario(&cfg, false), child_seed(seed, 1)),
        ];
        let runs = Session::new().run(&cases).unwrap();
        let materialized =
            Fig6Result { smt: reduce(&runs[0], true), no_smt: reduce(&runs[1], false) };
        for (workers, shard) in [(1, 1), (7, 64)] {
            let streamed = run_with(&cfg, seed, &Session::new().workers(workers).shard_size(shard));
            assert_eq!(render(&streamed), render(&materialized), "workers {workers} shard {shard}");
        }
        assert_eq!(tables(&run(&cfg, seed))[0].to_json(), tables(&materialized)[0].to_json());
    }

    #[test]
    fn equilibria_match_fig6() {
        let r = run(&quick(), 51);
        assert!((r.smt.freq_ghz - PAPER_SMT.freq_ghz).abs() < 0.05, "smt {}", r.smt.freq_ghz);
        assert!(
            (r.no_smt.freq_ghz - PAPER_NO_SMT.freq_ghz).abs() < 0.05,
            "no-smt {}",
            r.no_smt.freq_ghz
        );
        // SMT runs slower but retires more per cycle.
        assert!(r.smt.freq_ghz < r.no_smt.freq_ghz);
        assert!(r.smt.ipc > r.no_smt.ipc);
    }

    #[test]
    fn power_and_rapl_match_fig6() {
        let r = run(&quick(), 52);
        assert!((r.smt.ac_w - PAPER_SMT.ac_w).abs() < 10.0, "smt AC {}", r.smt.ac_w);
        assert!((r.no_smt.ac_w - PAPER_NO_SMT.ac_w).abs() < 10.0, "no-smt AC {}", r.no_smt.ac_w);
        // RAPL reads ~the same in both modes while AC differs by ~20 W.
        assert!((r.smt.rapl_pkg_w - r.no_smt.rapl_pkg_w).abs() < 5.0);
        assert!(r.smt.ac_w - r.no_smt.ac_w > 10.0);
        // RAPL stays below the 180 W TDP.
        assert!(r.smt.rapl_pkg_w < 175.0 && r.smt.rapl_pkg_w > 160.0);
    }

    #[test]
    fn ipc_matches_paper_throughput() {
        let r = run(&quick(), 53);
        assert!((r.smt.ipc - 3.56).abs() < 0.05, "smt IPC {}", r.smt.ipc);
        assert!((r.no_smt.ipc - 3.23).abs() < 0.05, "no-smt IPC {}", r.no_smt.ipc);
    }

    #[test]
    fn boost_has_almost_no_influence() {
        // Paper: "Enabling Core Performance Boost has almost no influence
        // on throughput, frequency and power" — the workload sits below
        // nominal anyway.
        let plain = run(&quick(), 54);
        let boosted = run(&Config { boost: true, ..quick() }, 54);
        assert!((plain.smt.freq_ghz - boosted.smt.freq_ghz).abs() < 0.05);
        assert!((plain.smt.ac_w - boosted.smt.ac_w).abs() < 10.0);
    }
}
