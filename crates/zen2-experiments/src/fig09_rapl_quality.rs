//! Fig. 9 — quality of the integrated power measurement (RAPL vs the AC
//! reference).
//!
//! Following Hackenberg et al.: a grid of experiments, each a combination
//! of workload, thread placement and frequency, run for 10 s; RAPL package
//! and core energy plus the external AC power are recorded for each. If
//! RAPL were an accurate system-level measurement, one function would map
//! RAPL to the reference; instead the per-workload spread exposes the
//! model.
//!
//! Each grid point is a declarative [`Scenario`] (placement and pre-heat
//! as steps, [`Probe::RaplW`] and [`Probe::AcTrueMeanW`] over the same
//! window); the grid runs as one [`Session`] batch sharing a single
//! booted prototype.

use crate::report::Table;
use crate::seeds;
use crate::Scale;
use serde::Serialize;
use zen2_isa::{KernelClass, OperandWeight};
use zen2_sim::{Case, Probe, Scenario, Session, SimConfig, Window};
use zen2_topology::{CpuNumbering, LogicalCpu, ThreadId};

/// One experiment point.
#[derive(Debug, Clone, Serialize)]
pub struct Point {
    /// Workload name.
    pub workload: String,
    /// Active cores.
    pub cores: usize,
    /// Both SMT threads per active core.
    pub smt: bool,
    /// Core frequency, MHz.
    pub freq_mhz: u32,
    /// Mean system AC power, W.
    pub ac_w: f64,
    /// RAPL package-domain sum, W.
    pub rapl_pkg_w: f64,
    /// RAPL core-domain sum, W.
    pub rapl_core_w: f64,
}

/// Full experiment output.
#[derive(Debug, Clone, Serialize)]
pub struct Fig9Result {
    /// All measured points.
    pub points: Vec<Point>,
    /// Least-squares fit `AC ≈ a·RAPL_pkg + b`.
    pub fit_slope: f64,
    /// Fit intercept, W.
    pub fit_intercept_w: f64,
    /// Worst residual from the fit, W.
    pub worst_residual_w: f64,
    /// Mean residual of memory-bound workloads (positive = AC above fit:
    /// RAPL misses DRAM power).
    pub memory_residual_w: f64,
}

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Duration per point, seconds (paper: 10 s).
    pub duration_s: f64,
    /// Core-count placements.
    pub placements: Vec<(usize, bool)>,
    /// Frequencies, MHz.
    pub freqs_mhz: Vec<u32>,
}

impl Config {
    /// Scaled configuration.
    pub fn new(scale: Scale) -> Self {
        Self {
            duration_s: scale.pick(0.4, 10.0),
            placements: match scale {
                Scale::Quick => vec![(8, false), (64, false), (64, true)],
                Scale::Paper => vec![(1, false), (16, false), (32, false), (64, false), (64, true)],
            },
            freqs_mhz: vec![1500, 2200, 2500],
        }
    }
}

/// Pre-heat time before the measurement window opens.
const T_MEASURE_S: f64 = 0.05;

/// Builds one grid point's scenario: the placement at t = 0, the pre-heat
/// at 50 ms, then RAPL and the AC reference over the same window.
pub fn point_scenario(
    cfg: &Config,
    class: KernelClass,
    cores: usize,
    smt: bool,
    mhz: u32,
) -> Scenario {
    let numbering = CpuNumbering::linux_default(&SimConfig::epyc_7502_2s().topology);
    let mut sc = Scenario::new();
    if class != KernelClass::Idle {
        let threads = if smt { cores * 2 } else { cores };
        let mut at = sc.at(0);
        for cpu in 0..threads {
            let t = numbering.thread_of(LogicalCpu(cpu as u32));
            let sib = ThreadId(t.0 ^ 1);
            at = at.pstate(t, mhz).pstate(sib, mhz).workload(t, class, OperandWeight::HALF);
        }
    }
    sc.at_secs(T_MEASURE_S).preheat();
    let window = Window::span_secs(T_MEASURE_S, T_MEASURE_S + cfg.duration_s);
    sc.probe("rapl", Probe::RaplW, window);
    sc.probe("ac", Probe::AcTrueMeanW, window);
    sc
}

/// Runs the full grid as one [`Session`] batch.
pub fn run(cfg: &Config, seed: u64) -> Fig9Result {
    let kernels = zen2_isa::WorkloadSet::paper();
    let classes: Vec<KernelClass> = kernels.rapl_quality_set().iter().map(|k| k.class).collect();
    let mut jobs = Vec::new();
    for &class in &classes {
        if class == KernelClass::Idle {
            jobs.push((class, 0usize, false, 2500u32));
            continue;
        }
        for &(cores, smt) in &cfg.placements {
            for &mhz in &cfg.freqs_mhz {
                jobs.push((class, cores, smt, mhz));
            }
        }
    }
    let cases: Vec<Case> = jobs
        .iter()
        .enumerate()
        .map(|(i, &(class, cores, smt, mhz))| {
            Case::new(
                format!("{}-{cores}c-smt{smt}-{mhz}", class.name()),
                SimConfig::epyc_7502_2s(),
                point_scenario(cfg, class, cores, smt, mhz),
                seeds::child(seed, i as u64),
            )
        })
        .collect();
    let runs = Session::new().run(&cases).expect("fig09 scenarios validate");
    let points: Vec<Point> = jobs
        .iter()
        .zip(&runs)
        .map(|(&(class, cores, smt, mhz), run)| {
            let (rapl_pkg_w, rapl_core_w) = run.watts_pair("rapl");
            Point {
                workload: class.name().into(),
                cores,
                smt,
                freq_mhz: mhz,
                ac_w: run.watts("ac"),
                rapl_pkg_w,
                rapl_core_w,
            }
        })
        .collect();

    // Least squares AC = a*rapl + b.
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.rapl_pkg_w).sum();
    let sy: f64 = points.iter().map(|p| p.ac_w).sum();
    let sxx: f64 = points.iter().map(|p| p.rapl_pkg_w * p.rapl_pkg_w).sum();
    let sxy: f64 = points.iter().map(|p| p.rapl_pkg_w * p.ac_w).sum();
    let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let intercept = (sy - slope * sx) / n;

    let residual = |p: &Point| p.ac_w - (slope * p.rapl_pkg_w + intercept);
    let worst = points.iter().map(|p| residual(p).abs()).fold(0.0, f64::max);
    let memory: Vec<f64> =
        points.iter().filter(|p| p.workload.starts_with("memory")).map(residual).collect();
    let memory_residual =
        if memory.is_empty() { 0.0 } else { memory.iter().sum::<f64>() / memory.len() as f64 };

    Fig9Result {
        points,
        fit_slope: slope,
        fit_intercept_w: intercept,
        worst_residual_w: worst,
        memory_residual_w: memory_residual,
    }
}

/// Renders the scatter as a table plus fit statistics.
pub fn render(r: &Fig9Result) -> String {
    let mut t = Table::new(
        "Fig. 9 — RAPL vs AC reference (one row per experiment)",
        &["workload", "cores", "SMT", "f [MHz]", "AC [W]", "RAPL pkg [W]", "RAPL core [W]"],
    );
    for p in &r.points {
        t.row(&[
            p.workload.clone(),
            format!("{}", p.cores),
            format!("{}", p.smt),
            format!("{}", p.freq_mhz),
            format!("{:.1}", p.ac_w),
            format!("{:.1}", p.rapl_pkg_w),
            format!("{:.1}", p.rapl_core_w),
        ]);
    }
    let mut out = t.render();
    out.push_str(&format!(
        "linear fit: AC = {:.2} x RAPL_pkg + {:.1} W; worst residual {:.1} W; \
         mean memory-workload residual {:+.1} W (RAPL misses DRAM)\n",
        r.fit_slope, r.fit_intercept_w, r.worst_residual_w, r.memory_residual_w
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Config {
        Config {
            duration_s: 0.3,
            placements: vec![(16, false), (64, true)],
            freqs_mhz: vec![1500, 2500],
        }
    }

    #[test]
    fn rapl_underreports_and_points_scatter() {
        let r = run(&quick(), 81);
        // "the RAPL package domain reports significantly lower power
        // compared to the external measurement": every active point.
        for p in r.points.iter().filter(|p| p.workload != "idle") {
            assert!(p.rapl_pkg_w < p.ac_w, "{}: {} vs {}", p.workload, p.rapl_pkg_w, p.ac_w);
        }
        // No single function maps RAPL to AC: substantial residuals.
        assert!(r.worst_residual_w > 10.0, "worst residual {:.1}", r.worst_residual_w);
    }

    #[test]
    fn memory_workloads_sit_above_the_fit() {
        let r = run(&quick(), 82);
        assert!(
            r.memory_residual_w > 5.0,
            "memory workloads draw AC that RAPL cannot see: {:+.1} W",
            r.memory_residual_w
        );
    }

    #[test]
    fn core_domain_is_below_package_domain() {
        let r = run(&quick(), 83);
        for p in &r.points {
            assert!(
                p.rapl_core_w <= p.rapl_pkg_w + 1e-6,
                "{}: core {} pkg {}",
                p.workload,
                p.rapl_core_w,
                p.rapl_pkg_w
            );
        }
    }

    #[test]
    fn compute_workloads_scale_with_frequency() {
        let r = run(&quick(), 84);
        let find = |mhz: u32| {
            r.points
                .iter()
                .find(|p| p.workload == "add_pd" && p.freq_mhz == mhz && p.cores == 64)
                .expect("point present")
                .ac_w
        };
        assert!(find(2500) > find(1500) + 30.0);
    }
}
