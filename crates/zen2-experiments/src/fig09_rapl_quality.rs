//! Fig. 9 — quality of the integrated power measurement (RAPL vs the AC
//! reference).
//!
//! Following Hackenberg et al.: a grid of experiments, each a combination
//! of workload, thread placement and frequency, run for 10 s; RAPL package
//! and core energy plus the external AC power are recorded for each. If
//! RAPL were an accurate system-level measurement, one function would map
//! RAPL to the reference; instead the per-workload spread exposes the
//! model.
//!
//! Each grid point is a declarative [`Scenario`] (placement and pre-heat
//! as steps, [`Probe::RaplW`] and [`Probe::AcTrueMeanW`] over the same
//! window). The workload × placement × frequency cross product is a
//! three-axis [`Sweep`] streamed through the [`Session`] worker pool
//! (idle, which has no placement or frequency fan-out, runs as its own
//! single-case grid), and the scatter rows come back through a
//! [`GroupedStats`] bucket keyed by all three axes. [`run_checkpointed`]
//! persists those buckets at every shard boundary for the
//! `--checkpoint` / `--resume` workflow documented in `docs/SWEEPS.md`.

use crate::report::Table;
use crate::seeds;
use crate::Scale;
use serde::Serialize;
use zen2_isa::{KernelClass, OperandWeight};
use zen2_sim::checkpoint::{run_resumable, CheckpointState};
use zen2_sim::{
    Axis, Checkpoint, CheckpointError, CheckpointSpec, GroupedStats, Json, OnlineStats, Probe, Run,
    Scenario, Session, SimConfig, Snapshot, SnapshotError, Sweep, Window,
};
use zen2_topology::{CpuNumbering, LogicalCpu, ThreadId};

/// One experiment point.
#[derive(Debug, Clone, Serialize)]
pub struct Point {
    /// Workload name.
    pub workload: String,
    /// Active cores.
    pub cores: usize,
    /// Both SMT threads per active core.
    pub smt: bool,
    /// Core frequency, MHz.
    pub freq_mhz: u32,
    /// Mean system AC power, W.
    pub ac_w: f64,
    /// RAPL package-domain sum, W.
    pub rapl_pkg_w: f64,
    /// RAPL core-domain sum, W.
    pub rapl_core_w: f64,
}

/// Full experiment output.
#[derive(Debug, Clone, Serialize)]
pub struct Fig9Result {
    /// All measured points.
    pub points: Vec<Point>,
    /// Least-squares fit `AC ≈ a·RAPL_pkg + b`.
    pub fit_slope: f64,
    /// Fit intercept, W.
    pub fit_intercept_w: f64,
    /// Worst residual from the fit, W.
    pub worst_residual_w: f64,
    /// Mean residual of memory-bound workloads (positive = AC above fit:
    /// RAPL misses DRAM power).
    pub memory_residual_w: f64,
}

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Duration per point, seconds (paper: 10 s).
    pub duration_s: f64,
    /// Core-count placements.
    pub placements: Vec<(usize, bool)>,
    /// Frequencies, MHz.
    pub freqs_mhz: Vec<u32>,
}

impl Config {
    /// Scaled configuration.
    pub fn new(scale: Scale) -> Self {
        Self {
            duration_s: scale.pick(0.4, 10.0),
            placements: match scale {
                Scale::Quick => vec![(8, false), (64, false), (64, true)],
                Scale::Paper => vec![(1, false), (16, false), (32, false), (64, false), (64, true)],
            },
            freqs_mhz: vec![1500, 2200, 2500],
        }
    }
}

/// Pre-heat time before the measurement window opens.
const T_MEASURE_S: f64 = 0.05;

/// Builds one grid point's scenario: the placement at t = 0, the pre-heat
/// at 50 ms, then RAPL and the AC reference over the same window.
pub fn point_scenario(
    cfg: &Config,
    class: KernelClass,
    cores: usize,
    smt: bool,
    mhz: u32,
) -> Scenario {
    let numbering = CpuNumbering::linux_default(&SimConfig::epyc_7502_2s().topology);
    let mut sc = Scenario::new();
    if class != KernelClass::Idle {
        let threads = if smt { cores * 2 } else { cores };
        let mut at = sc.at(0);
        for cpu in 0..threads {
            let t = numbering.thread_of(LogicalCpu(cpu as u32));
            let sib = ThreadId(t.0 ^ 1);
            at = at.pstate(t, mhz).pstate(sib, mhz).workload(t, class, OperandWeight::HALF);
        }
    }
    sc.at_secs(T_MEASURE_S).preheat();
    let window = Window::span_secs(T_MEASURE_S, T_MEASURE_S + cfg.duration_s);
    sc.probe("rapl", Probe::RaplW, window);
    sc.probe("ac", Probe::AcTrueMeanW, window);
    sc
}

/// The Fig. 9 workload set, in the paper's legend order.
fn classes() -> Vec<KernelClass> {
    zen2_isa::WorkloadSet::paper().rapl_quality_set().iter().map(|k| k.class).collect()
}

/// One scatter point's streamed measurements: AC reference, RAPL
/// package sum, RAPL core sum (each a single observation per grid
/// cell — [`OnlineStats::mean`] of one push is exact).
#[derive(Debug, Clone, Default, PartialEq)]
struct CellStats {
    ac: OnlineStats,
    pkg: OnlineStats,
    core: OnlineStats,
}

impl CellStats {
    fn observe(&mut self, run: &Run) {
        let (pkg, core) = run.watts_pair("rapl");
        self.ac.push(run.watts("ac"));
        self.pkg.push(pkg);
        self.core.push(core);
    }
}

/// The resumable accumulator bundle: the grouped scatter cells plus the
/// idle rider's cell.
struct Fig9State {
    grid_len: usize,
    grouped: GroupedStats<CellStats>,
    idle: CellStats,
}

impl CheckpointState for Fig9State {
    fn save_into(&self, checkpoint: &mut Checkpoint) {
        checkpoint.set_grouped("grid", &self.grouped);
        checkpoint.set_single("idle", &self.idle);
    }

    fn restore_from(&mut self, checkpoint: &Checkpoint) -> Result<(), CheckpointError> {
        self.grouped = checkpoint.grouped("grid", &self.grouped)?;
        self.idle = checkpoint.single("idle")?;
        Ok(())
    }

    fn fold(&mut self, index: usize, run: Run) {
        if index < self.grid_len {
            self.grouped.entry(index).observe(&run);
        } else {
            self.idle.observe(&run);
        }
    }
}

impl Snapshot for CellStats {
    fn snapshot(&self) -> Json {
        Json::obj([
            ("ac", self.ac.snapshot()),
            ("pkg", self.pkg.snapshot()),
            ("core", self.core.snapshot()),
        ])
    }

    fn restore(json: &Json) -> Result<Self, SnapshotError> {
        Ok(Self {
            ac: OnlineStats::restore(json.get("ac")?)?,
            pkg: OnlineStats::restore(json.get("pkg")?)?,
            core: OnlineStats::restore(json.get("core")?)?,
        })
    }
}

/// The non-idle grid as a declarative [`Sweep`]: workload × placement ×
/// frequency, the joint point scenario built in the finish hook. The
/// seed derivation reproduces the module's historical flat job indices
/// (idle — excluded here because it has no placement/frequency fan-out —
/// occupies one index in that flat order).
pub fn sweep(cfg: &Config, seed: u64) -> Sweep {
    let active: Vec<KernelClass> =
        classes().into_iter().filter(|&c| c != KernelClass::Idle).collect();
    let mut workload_axis = Axis::new("workload");
    for (ci, class) in active.iter().enumerate() {
        workload_axis =
            workload_axis.with(class.name(), move |draft| draft.set_param("workload", ci as f64));
    }
    let mut placement_axis = Axis::new("placement");
    for (pi, &(cores, smt)) in cfg.placements.iter().enumerate() {
        let label = format!("{cores}c{}", if smt { "+smt" } else { "" });
        placement_axis =
            placement_axis.with(label, move |draft| draft.set_param("placement", pi as f64));
    }
    let freq_axis = Axis::param("freq", cfg.freqs_mhz.iter().map(|&mhz| mhz as f64));

    let (_, flat) = flat_job_indices(cfg);
    let cfg = cfg.clone();
    let placements = cfg.placements.clone();
    Sweep::new("fig09", SimConfig::epyc_7502_2s())
        .seed_fn(move |i| seeds::child(seed, flat[i as usize]))
        .axis(workload_axis)
        .axis(placement_axis)
        .axis(freq_axis)
        .finish(move |draft| {
            let class = active[draft.param("workload") as usize];
            let (cores, smt) = placements[draft.param("placement") as usize];
            draft.scenario = point_scenario(&cfg, class, cores, smt, draft.param("freq") as u32);
        })
}

/// The historical flat job indices, in one pass over the legend order:
/// the index of the single idle job, and the index of every non-idle
/// sweep case in sweep (row-major) order. The pre-port code enumerated
/// the workload set in legend order with idle as a single job in place,
/// seeding each job by its flat position — both walks must agree, so
/// they are derived together.
fn flat_job_indices(cfg: &Config) -> (u64, Vec<u64>) {
    let per_class = (cfg.placements.len() * cfg.freqs_mhz.len()) as u64;
    let mut idle = None;
    let mut flat = Vec::new();
    let mut next = 0u64;
    for class in classes() {
        if class == KernelClass::Idle {
            idle = Some(next);
            next += 1;
            continue;
        }
        flat.extend(next..next + per_class);
        next += per_class;
    }
    (idle.expect("idle is part of the Fig. 9 workload set"), flat)
}

/// Runs the full grid through the streaming sweep engine.
pub fn run(cfg: &Config, seed: u64) -> Fig9Result {
    run_with(cfg, seed, &Session::new())
}

/// [`run`] on an explicit session (the worker/shard-invariance hook).
fn run_with(cfg: &Config, seed: u64, session: &Session) -> Fig9Result {
    run_checkpointed(cfg, seed, session, &CheckpointSpec::none())
        .expect("checkpointing disabled")
        .expect("no halt configured")
}

/// [`run`] with checkpoint/resume: persists the grouped scatter cells
/// and the idle rider at every shard boundary per `spec`, resumes from
/// `spec`'s checkpoint when asked, and produces output byte-identical
/// to an uninterrupted run. Returns `None` when the run halted early
/// (`--halt-after`), with the checkpoint holding everything needed to
/// resume.
///
/// # Errors
/// Errors when the checkpoint cannot be read, written, or does not
/// belong to this grid.
pub fn run_checkpointed(
    cfg: &Config,
    seed: u64,
    session: &Session,
    spec: &CheckpointSpec,
) -> Result<Option<Fig9Result>, CheckpointError> {
    let sweep = sweep(cfg, seed);
    // Idle has no placement/frequency fan-out, so it rides along as one
    // extra case appended to the grid stream (sharing the grid's booted
    // prototype) at its historical flat-index seed.
    let (idle_index, _) = flat_job_indices(cfg);
    let idle_case = zen2_sim::Case::new(
        "fig09/idle",
        SimConfig::epyc_7502_2s(),
        point_scenario(cfg, KernelClass::Idle, 0, false, 2500),
        seeds::child(seed, idle_index),
    );
    let mut state = Fig9State {
        grid_len: sweep.len(),
        grouped: GroupedStats::new(&sweep, &["workload", "placement", "freq"]),
        idle: CellStats::default(),
    };
    if !run_resumable(&sweep, vec![idle_case], session, spec, &mut state)? {
        return Ok(None);
    }

    // Reassemble the scatter in the historical jobs order: the grouped
    // rows arrive in grid order (workload-major), with idle spliced
    // back in at its legend position.
    let (grouped, idle) = (state.grouped, state.idle);
    let mut rows = grouped.rows();
    let mut points = Vec::new();
    for class in classes() {
        if class == KernelClass::Idle {
            points.push(point(class, 0, false, 2500, &idle));
            continue;
        }
        for (cores, smt) in cfg.placements.iter().copied() {
            for &mhz in &cfg.freqs_mhz {
                let (_, cell) = rows.next().expect("one grouped row per grid cell");
                points.push(point(class, cores, smt, mhz, cell));
            }
        }
    }

    Ok(Some(fit(points)))
}

/// Builds one scatter [`Point`] from a grid cell's streamed statistics.
fn point(class: KernelClass, cores: usize, smt: bool, mhz: u32, cell: &CellStats) -> Point {
    Point {
        workload: class.name().into(),
        cores,
        smt,
        freq_mhz: mhz,
        ac_w: cell.ac.mean(),
        rapl_pkg_w: cell.pkg.mean(),
        rapl_core_w: cell.core.mean(),
    }
}

/// Fits `AC ≈ a·RAPL_pkg + b` over the scatter and derives the residual
/// diagnostics.
fn fit(points: Vec<Point>) -> Fig9Result {
    // Least squares AC = a*rapl + b.
    let n = points.len() as f64;
    // zen2-lint: allow(float-order) — single fixed-order pass over the grid-ordered point Vec
    let sx: f64 = points.iter().map(|p| p.rapl_pkg_w).sum();
    // zen2-lint: allow(float-order) — single fixed-order pass over the grid-ordered point Vec
    let sy: f64 = points.iter().map(|p| p.ac_w).sum();
    // zen2-lint: allow(float-order) — single fixed-order pass over the grid-ordered point Vec
    let sxx: f64 = points.iter().map(|p| p.rapl_pkg_w * p.rapl_pkg_w).sum();
    // zen2-lint: allow(float-order) — single fixed-order pass over the grid-ordered point Vec
    let sxy: f64 = points.iter().map(|p| p.rapl_pkg_w * p.ac_w).sum();
    let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let intercept = (sy - slope * sx) / n;

    let residual = |p: &Point| p.ac_w - (slope * p.rapl_pkg_w + intercept);
    let worst = points.iter().map(|p| residual(p).abs()).fold(0.0, f64::max);
    let memory: Vec<f64> =
        points.iter().filter(|p| p.workload.starts_with("memory")).map(residual).collect();
    let memory_residual =
        if memory.is_empty() { 0.0 } else { memory.iter().sum::<f64>() / memory.len() as f64 }; // zen2-lint: allow(float-order) — residual Vec preserves grid point order; one pass

    Fig9Result {
        points,
        fit_slope: slope,
        fit_intercept_w: intercept,
        worst_residual_w: worst,
        memory_residual_w: memory_residual,
    }
}

/// Renders the scatter as a table plus fit statistics.
pub fn render(r: &Fig9Result) -> String {
    let mut out = tables(r)[0].render();
    out.push_str(&format!(
        "linear fit: AC = {:.2} x RAPL_pkg + {:.1} W; worst residual {:.1} W; \
         mean memory-workload residual {:+.1} W (RAPL misses DRAM)\n",
        r.fit_slope, r.fit_intercept_w, r.worst_residual_w, r.memory_residual_w
    ));
    out
}

/// The scatter as a [`Table`] (for text, CSV, or JSON output).
pub fn tables(r: &Fig9Result) -> Vec<Table> {
    let mut t = Table::new(
        "Fig. 9 — RAPL vs AC reference (one row per experiment)",
        &["workload", "cores", "SMT", "f [MHz]", "AC [W]", "RAPL pkg [W]", "RAPL core [W]"],
    );
    for p in &r.points {
        t.row(&[
            p.workload.clone(),
            format!("{}", p.cores),
            format!("{}", p.smt),
            format!("{}", p.freq_mhz),
            format!("{:.1}", p.ac_w),
            format!("{:.1}", p.rapl_pkg_w),
            format!("{:.1}", p.rapl_core_w),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Config {
        Config {
            duration_s: 0.3,
            placements: vec![(16, false), (64, true)],
            freqs_mhz: vec![1500, 2500],
        }
    }

    #[test]
    fn sweep_engine_matches_materialized_session() {
        // The sweep port must not change results: the same jobs list
        // built by hand (as the module did before the sweep engine —
        // legend-ordered classes with idle as a single inline job,
        // seeded by flat job index) and run materialized produces a
        // byte-identical scatter table, for more than one worker/shard
        // split.
        use zen2_sim::Case;
        let cfg = quick();
        let seed = 85;
        let mut jobs = Vec::new();
        for class in classes() {
            if class == KernelClass::Idle {
                jobs.push((class, 0usize, false, 2500u32));
                continue;
            }
            for &(cores, smt) in &cfg.placements {
                for &mhz in &cfg.freqs_mhz {
                    jobs.push((class, cores, smt, mhz));
                }
            }
        }
        let cases: Vec<Case> = jobs
            .iter()
            .enumerate()
            .map(|(i, &(class, cores, smt, mhz))| {
                Case::new(
                    format!("{}-{cores}c-smt{smt}-{mhz}", class.name()),
                    SimConfig::epyc_7502_2s(),
                    point_scenario(&cfg, class, cores, smt, mhz),
                    seeds::child(seed, i as u64),
                )
            })
            .collect();
        let runs = Session::new().run(&cases).unwrap();
        let points: Vec<Point> = jobs
            .iter()
            .zip(&runs)
            .map(|(&(class, cores, smt, mhz), run)| {
                let (rapl_pkg_w, rapl_core_w) = run.watts_pair("rapl");
                Point {
                    workload: class.name().into(),
                    cores,
                    smt,
                    freq_mhz: mhz,
                    ac_w: run.watts("ac"),
                    rapl_pkg_w,
                    rapl_core_w,
                }
            })
            .collect();
        let materialized = fit(points);
        for (workers, shard) in [(1, 1), (7, 5)] {
            let streamed = run_with(&cfg, seed, &Session::new().workers(workers).shard_size(shard));
            assert_eq!(render(&streamed), render(&materialized), "workers {workers} shard {shard}");
            assert_eq!(streamed.fit_slope, materialized.fit_slope);
            assert_eq!(streamed.worst_residual_w, materialized.worst_residual_w);
        }
        assert_eq!(tables(&run(&cfg, seed))[0].to_json(), tables(&materialized)[0].to_json());
    }

    #[test]
    fn halted_run_resumes_to_byte_identical_output() {
        // Interrupt after one checkpoint save (a clean stand-in for a
        // kill right after the save), resume from the file, and the
        // final report must be byte-identical to an uninterrupted run —
        // across different worker/shard splits on the two halves.
        let cfg = quick();
        let seed = 86;
        let clean = run(&cfg, seed);
        let path =
            std::env::temp_dir().join(format!("zen2-fig09-resume-test-{}", std::process::id()));
        let halted = run_checkpointed(
            &cfg,
            seed,
            &Session::new().workers(2).shard_size(3),
            &CheckpointSpec { halt_after: Some(1), ..CheckpointSpec::at(&path) },
        )
        .unwrap();
        assert!(halted.is_none(), "the run must actually halt mid-grid");
        let resumed = run_checkpointed(
            &cfg,
            seed,
            &Session::new().workers(7).shard_size(2),
            &CheckpointSpec::resume_from(&path),
        )
        .unwrap()
        .expect("resumed run completes");
        std::fs::remove_file(&path).unwrap();
        assert_eq!(render(&resumed), render(&clean));
        assert_eq!(tables(&resumed)[0].to_json(), tables(&clean)[0].to_json());
        assert_eq!(resumed.fit_slope.to_bits(), clean.fit_slope.to_bits());
    }

    #[test]
    fn resume_rejects_a_checkpoint_from_another_grid() {
        // A checkpoint written at one scale must not silently misfold
        // into a differently shaped grid.
        let path =
            std::env::temp_dir().join(format!("zen2-fig09-mismatch-test-{}", std::process::id()));
        let cfg = quick();
        let halted = run_checkpointed(
            &cfg,
            87,
            &Session::new().workers(2).shard_size(3),
            &CheckpointSpec { halt_after: Some(1), ..CheckpointSpec::at(&path) },
        )
        .unwrap();
        assert!(halted.is_none());
        let reshaped = Config { freqs_mhz: vec![1500], ..cfg };
        let err =
            run_checkpointed(&reshaped, 87, &Session::new(), &CheckpointSpec::resume_from(&path))
                .unwrap_err();
        std::fs::remove_file(&path).unwrap();
        assert!(err.to_string().contains("grid shape"), "{err}");
    }

    #[test]
    fn rapl_underreports_and_points_scatter() {
        let r = run(&quick(), 81);
        // "the RAPL package domain reports significantly lower power
        // compared to the external measurement": every active point.
        for p in r.points.iter().filter(|p| p.workload != "idle") {
            assert!(p.rapl_pkg_w < p.ac_w, "{}: {} vs {}", p.workload, p.rapl_pkg_w, p.ac_w);
        }
        // No single function maps RAPL to AC: substantial residuals.
        assert!(r.worst_residual_w > 10.0, "worst residual {:.1}", r.worst_residual_w);
    }

    #[test]
    fn memory_workloads_sit_above_the_fit() {
        let r = run(&quick(), 82);
        assert!(
            r.memory_residual_w > 5.0,
            "memory workloads draw AC that RAPL cannot see: {:+.1} W",
            r.memory_residual_w
        );
    }

    #[test]
    fn core_domain_is_below_package_domain() {
        let r = run(&quick(), 83);
        for p in &r.points {
            assert!(
                p.rapl_core_w <= p.rapl_pkg_w + 1e-6,
                "{}: core {} pkg {}",
                p.workload,
                p.rapl_core_w,
                p.rapl_pkg_w
            );
        }
    }

    #[test]
    fn compute_workloads_scale_with_frequency() {
        let r = run(&quick(), 84);
        let find = |mhz: u32| {
            r.points
                .iter()
                .find(|p| p.workload == "add_pd" && p.freq_mhz == mhz && p.cores == 64)
                .expect("point present")
                .ac_w
        };
        assert!(find(2500) > find(1500) + 30.0);
    }
}
