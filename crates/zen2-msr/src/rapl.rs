//! RAPL unit register encoding and counter arithmetic.
//!
//! AMD replaced APM with RAPL on Zen (Section III-C of the paper). The
//! `RAPL_PWR_UNIT` register carries three unit fields; energy counters are
//! 32-bit and wrap. The default AMD energy status unit is 2⁻¹⁶ J ≈ 15.26 µJ.

use serde::{Deserialize, Serialize};

/// Decoded `RAPL_PWR_UNIT` fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RaplUnits {
    /// Power unit exponent: power LSB = 2^-pu W (bits 3:0).
    pub power_unit: u8,
    /// Energy status unit exponent: energy LSB = 2^-esu J (bits 12:8).
    pub energy_unit: u8,
    /// Time unit exponent: time LSB = 2^-tu s (bits 19:16).
    pub time_unit: u8,
}

impl Default for RaplUnits {
    fn default() -> Self {
        Self::amd_default()
    }
}

impl RaplUnits {
    /// AMD Family 17h reset values: PU = 3 (125 mW), ESU = 16 (15.26 µJ),
    /// TU = 10 (977 µs).
    pub fn amd_default() -> Self {
        Self { power_unit: 3, energy_unit: 16, time_unit: 10 }
    }

    /// Joules represented by one energy-counter LSB.
    pub fn joules_per_count(&self) -> f64 {
        (0.5f64).powi(self.energy_unit as i32)
    }

    /// Converts joules into counter counts (truncating, as hardware does).
    pub fn joules_to_counts(&self, joules: f64) -> u64 {
        (joules / self.joules_per_count()) as u64
    }

    /// Converts a counter value into joules.
    pub fn counts_to_joules(&self, counts: u64) -> f64 {
        counts as f64 * self.joules_per_count()
    }

    /// Encodes into the register format.
    pub fn encode(&self) -> u64 {
        (self.power_unit as u64 & 0xF)
            | ((self.energy_unit as u64 & 0x1F) << 8)
            | ((self.time_unit as u64 & 0xF) << 16)
    }

    /// Decodes from the register format.
    pub fn decode(raw: u64) -> Self {
        Self {
            power_unit: (raw & 0xF) as u8,
            energy_unit: ((raw >> 8) & 0x1F) as u8,
            time_unit: ((raw >> 16) & 0xF) as u8,
        }
    }
}

/// Computes the energy consumed between two reads of a wrapping 32-bit
/// energy counter, in counter LSBs.
///
/// Tools must handle wraparound: at ~15.26 µJ per count a 32-bit counter
/// wraps after ~65.5 kJ — under six minutes at a 180 W package TDP.
#[inline]
pub fn counter_delta(before: u32, after: u32) -> u64 {
    after.wrapping_sub(before) as u64
}

/// Seconds until a 32-bit counter wraps at the given power draw.
pub fn seconds_to_wrap(units: &RaplUnits, watts: f64) -> f64 {
    assert!(watts > 0.0, "wrap time undefined for non-positive power");
    (u32::MAX as f64 + 1.0) * units.joules_per_count() / watts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amd_default_units() {
        let u = RaplUnits::amd_default();
        assert!((u.joules_per_count() - 15.258789e-6).abs() < 1e-11);
        assert_eq!(u.power_unit, 3);
        assert_eq!(u.time_unit, 10);
    }

    #[test]
    fn encode_decode_round_trip() {
        let u = RaplUnits { power_unit: 5, energy_unit: 14, time_unit: 9 };
        assert_eq!(RaplUnits::decode(u.encode()), u);
        assert_eq!(RaplUnits::decode(RaplUnits::amd_default().encode()), RaplUnits::amd_default());
    }

    #[test]
    fn joule_count_round_trip() {
        let u = RaplUnits::amd_default();
        let counts = u.joules_to_counts(1.0);
        let joules = u.counts_to_joules(counts);
        assert!((joules - 1.0).abs() < 2.0 * u.joules_per_count());
    }

    #[test]
    fn counter_delta_handles_wrap() {
        assert_eq!(counter_delta(10, 20), 10);
        assert_eq!(counter_delta(u32::MAX, 4), 5);
        assert_eq!(counter_delta(0, 0), 0);
    }

    #[test]
    fn wrap_time_at_tdp_is_under_ten_minutes() {
        // Sanity for the tooling note: at 180 W the package counter wraps
        // in roughly six minutes.
        let secs = seconds_to_wrap(&RaplUnits::amd_default(), 180.0);
        assert!(secs > 300.0 && secs < 420.0, "got {secs}");
    }

    #[test]
    #[should_panic(expected = "non-positive")]
    fn wrap_time_rejects_zero_power() {
        let _ = seconds_to_wrap(&RaplUnits::amd_default(), 0.0);
    }
}
