//! MSR addresses for AMD Family 17h Model 31h ("Rome") processors.
//!
//! Addresses follow the Processor Programming Reference (PPR) 55803. Only
//! the registers exercised by the paper's experiments are modeled; reading
//! anything else through [`crate::MsrFile`] raises the same error a real
//! `rdmsr` of an unimplemented register would (#GP).

/// Time-stamp counter (architectural).
pub const TSC: u32 = 0x0000_0010;
/// Max-performance counter: counts at P0 frequency while in C0 (architectural).
pub const MPERF: u32 = 0x0000_00E7;
/// Actual-performance counter: counts at the delivered frequency in C0
/// (architectural). The APERF/MPERF ratio is how `cpufreq` and the paper's
/// `perf` runs observe effective frequency.
pub const APERF: u32 = 0x0000_00E8;

/// Hardware configuration register (`Core::X86::Msr::HWCR`).
pub const HWCR: u32 = 0xC001_0015;

/// P-state current limit (`PStateCurLim`): lowest/highest available P-state.
pub const PSTATE_CUR_LIM: u32 = 0xC001_0061;
/// P-state control (`PStateCtl`): software writes the target P-state index.
pub const PSTATE_CTL: u32 = 0xC001_0062;
/// P-state status (`PStateStat`): the currently applied P-state index.
pub const PSTATE_STAT: u32 = 0xC001_0063;
/// First of eight P-state definition registers (`PStateDef[0..=7]`).
pub const PSTATE_DEF_BASE: u32 = 0xC001_0064;
/// Number of architecturally defined P-state definition registers.
pub const NUM_PSTATE_DEFS: u32 = 8;

/// Returns the address of `PStateDef[i]`.
///
/// # Panics
/// Panics if `i >= 8`; the PPR defines exactly eight P-state registers.
#[inline]
pub fn pstate_def(i: u32) -> u32 {
    assert!(i < NUM_PSTATE_DEFS, "PStateDef index {i} out of range (max 7)");
    PSTATE_DEF_BASE + i
}

/// C-state base address (`CStateBaseAddr`): I/O port window whose accesses
/// trigger C-state entry (Section III-B of the paper).
pub const CSTATE_BASE_ADDR: u32 = 0xC001_0073;

/// RAPL power unit register (`RAPL_PWR_UNIT`): power/energy/time unit fields.
pub const RAPL_PWR_UNIT: u32 = 0xC001_0299;
/// Per-core RAPL energy counter (`CORE_ENERGY_STAT`), 32-bit wrapping.
pub const CORE_ENERGY_STAT: u32 = 0xC001_029A;
/// Per-package RAPL energy counter (`PKG_ENERGY_STAT`), 32-bit wrapping.
pub const PKG_ENERGY_STAT: u32 = 0xC001_029B;

/// Intel's package energy MSR address — deliberately *not* implemented on
/// AMD; kept as a constant so tests can assert that reading it faults, the
/// way naive Intel-RAPL tooling does on Rome.
pub const INTEL_PKG_ENERGY_STATUS: u32 = 0x0000_0611;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pstate_def_addresses_are_contiguous() {
        assert_eq!(pstate_def(0), 0xC001_0064);
        assert_eq!(pstate_def(7), 0xC001_006B);
        for i in 1..8 {
            assert_eq!(pstate_def(i), pstate_def(i - 1) + 1);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pstate_def_rejects_index_8() {
        let _ = pstate_def(8);
    }

    #[test]
    fn rapl_addresses_match_ppr() {
        assert_eq!(RAPL_PWR_UNIT, 0xC0010299);
        assert_eq!(CORE_ENERGY_STAT, 0xC001029A);
        assert_eq!(PKG_ENERGY_STAT, 0xC001029B);
    }
}
