//! P-state definition register encoding (Family 17h).
//!
//! `PStateDef[n]` encodes a core frequency as a frequency ID and divisor ID
//! pair plus a voltage ID:
//!
//! ```text
//! bits  7:0   CpuFid   core frequency ID (multiple of 25 MHz at DID=8)
//! bits 13:8   CpuDfsId  divisor in eighths (8 = /1, 9 = /1.125, ...)
//! bits 21:14  CpuVid   SVI2 voltage ID: V = 1.55 V - 0.00625 V * VID
//! bits 27:22  IddValue expected maximum current of a single core
//! bits 29:28  IddDiv   current divisor (0 = /1, 1 = /10, 2 = /100)
//! bit  63     PstateEn this P-state is valid
//! ```
//!
//! `CoreCOF = 200 MHz * CpuFid / CpuDfsId` (PPR 55803 §2.1.14.3.1) — with
//! the usual DID of 8 this yields the 25 MHz granularity the paper links to
//! Precision Boost's 25 MHz steps.

use serde::{Deserialize, Serialize};

const FID_MASK: u64 = 0xFF;
const DID_SHIFT: u32 = 8;
const DID_MASK: u64 = 0x3F;
const VID_SHIFT: u32 = 14;
const VID_MASK: u64 = 0xFF;
const IDD_VALUE_SHIFT: u32 = 22;
const IDD_VALUE_MASK: u64 = 0x3F;
const IDD_DIV_SHIFT: u32 = 28;
const IDD_DIV_MASK: u64 = 0x3;
const EN_BIT: u64 = 1 << 63;

/// SVI2 voltage step in volts per VID step.
pub const VID_STEP_V: f64 = 0.00625;
/// SVI2 zero-VID voltage in volts.
pub const VID_BASE_V: f64 = 1.55;

/// A decoded P-state definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PstateDef {
    /// Core frequency ID.
    pub fid: u8,
    /// Frequency divisor in eighths (8 = divide by 1). Zero disables the
    /// divisor logic; such a P-state is treated as invalid.
    pub did: u8,
    /// SVI2 voltage ID.
    pub vid: u8,
    /// Expected maximum current of a single core, in `idd_div` units.
    pub idd_value: u8,
    /// Current divisor selector (0 = A, 1 = dA, 2 = cA).
    pub idd_div: u8,
    /// Whether the P-state is enabled.
    pub enabled: bool,
}

impl PstateDef {
    /// Builds an enabled P-state for a target frequency (MHz, multiple of
    /// 25) and core voltage (V), using DID = 8.
    ///
    /// # Panics
    /// Panics if the frequency is not a positive multiple of 25 MHz
    /// representable in the FID field, or the voltage is outside SVI2 range.
    pub fn for_frequency(freq_mhz: u32, voltage_v: f64) -> Self {
        assert!(
            freq_mhz > 0 && freq_mhz.is_multiple_of(25),
            "{freq_mhz} MHz is not a 25 MHz multiple"
        );
        let fid = freq_mhz / 25;
        assert!(fid <= 0xFF, "{freq_mhz} MHz does not fit in CpuFid at DID=8");
        assert!(
            (0.0..=VID_BASE_V).contains(&voltage_v),
            "{voltage_v} V outside SVI2 range [0, {VID_BASE_V}]"
        );
        let vid = ((VID_BASE_V - voltage_v) / VID_STEP_V).round() as u8;
        Self { fid: fid as u8, did: 8, vid, idd_value: 0, idd_div: 0, enabled: true }
    }

    /// Core operating frequency in MHz (`200 * FID / DID`), or `None` if the
    /// P-state is disabled or has a zero divisor.
    pub fn frequency_mhz(&self) -> Option<u32> {
        if !self.enabled || self.did == 0 {
            return None;
        }
        Some(200 * self.fid as u32 / self.did as u32)
    }

    /// Core voltage in volts decoded from the VID field.
    pub fn voltage_v(&self) -> f64 {
        VID_BASE_V - VID_STEP_V * self.vid as f64
    }

    /// Expected maximum single-core current in amperes.
    pub fn idd_amps(&self) -> f64 {
        let div = match self.idd_div {
            0 => 1.0,
            1 => 10.0,
            _ => 100.0,
        };
        self.idd_value as f64 / div
    }

    /// Encodes into the 64-bit register format.
    pub fn encode(&self) -> u64 {
        let mut raw = (self.fid as u64) & FID_MASK;
        raw |= ((self.did as u64) & DID_MASK) << DID_SHIFT;
        raw |= ((self.vid as u64) & VID_MASK) << VID_SHIFT;
        raw |= ((self.idd_value as u64) & IDD_VALUE_MASK) << IDD_VALUE_SHIFT;
        raw |= ((self.idd_div as u64) & IDD_DIV_MASK) << IDD_DIV_SHIFT;
        if self.enabled {
            raw |= EN_BIT;
        }
        raw
    }

    /// Decodes from the 64-bit register format.
    pub fn decode(raw: u64) -> Self {
        Self {
            fid: (raw & FID_MASK) as u8,
            did: ((raw >> DID_SHIFT) & DID_MASK) as u8,
            vid: ((raw >> VID_SHIFT) & VID_MASK) as u8,
            idd_value: ((raw >> IDD_VALUE_SHIFT) & IDD_VALUE_MASK) as u8,
            idd_div: ((raw >> IDD_DIV_SHIFT) & IDD_DIV_MASK) as u8,
            enabled: raw & EN_BIT != 0,
        }
    }
}

/// The machine's P-state table: up to eight definitions plus the current
/// limit, in hardware numbering (P0 = fastest).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PstateTable {
    defs: Vec<PstateDef>,
}

impl PstateTable {
    /// Builds a table from enabled definitions, fastest first.
    ///
    /// # Panics
    /// Panics if more than eight P-states are supplied ("a maximum of eight
    /// P-states can be defined", PPR §2.1.14.3) or the list is empty.
    pub fn new(defs: Vec<PstateDef>) -> Self {
        assert!(!defs.is_empty(), "at least one P-state is required");
        assert!(defs.len() <= 8, "at most 8 P-states can be defined");
        Self { defs }
    }

    /// The paper's EPYC 7502 table: 2.5 GHz (nominal), 2.2 GHz, 1.5 GHz.
    ///
    /// Voltages follow the calibration in `zen2-power`: they reproduce the
    /// measured active-power ratios between the three frequencies.
    pub fn epyc_7502() -> Self {
        Self::new(vec![
            PstateDef::for_frequency(2500, 1.000),
            PstateDef::for_frequency(2200, 0.950),
            PstateDef::for_frequency(1500, 0.850),
        ])
    }

    /// An EPYC 7742 table (64 cores, 2.25 GHz nominal) for the paper's
    /// future-work many-core analysis.
    pub fn epyc_7742() -> Self {
        Self::new(vec![
            PstateDef::for_frequency(2250, 0.900),
            PstateDef::for_frequency(1800, 0.830),
            PstateDef::for_frequency(1500, 0.780),
        ])
    }

    /// Number of defined P-states.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// The definition for P-state `index`, if defined.
    pub fn get(&self, index: usize) -> Option<&PstateDef> {
        self.defs.get(index)
    }

    /// All defined P-state frequencies in MHz, fastest first.
    pub fn frequencies_mhz(&self) -> Vec<u32> {
        self.defs.iter().filter_map(|d| d.frequency_mhz()).collect()
    }

    /// Finds the P-state index whose frequency matches `freq_mhz` exactly.
    pub fn index_of_frequency(&self, freq_mhz: u32) -> Option<usize> {
        self.defs.iter().position(|d| d.frequency_mhz() == Some(freq_mhz))
    }

    /// The value of the `PStateCurLim` register for this table:
    /// `CurPstateLimit` in bits 2:0 (fastest allowed = 0) and `PstateMaxVal`
    /// in bits 6:4 (slowest valid index).
    pub fn cur_lim_register(&self) -> u64 {
        let max = (self.defs.len() as u64 - 1) & 0x7;
        max << 4
    }

    /// Parses the number of available P-states from a `PStateCurLim` value,
    /// the way the paper determines "the actual number ... by polling the
    /// P-state current limit MSR".
    pub fn num_pstates_from_cur_lim(raw: u64) -> usize {
        (((raw >> 4) & 0x7) + 1) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip_epyc_values() {
        for (mhz, v) in [(2500u32, 1.000f64), (2200, 0.950), (1500, 0.850)] {
            let def = PstateDef::for_frequency(mhz, v);
            let round = PstateDef::decode(def.encode());
            assert_eq!(round, def);
            assert_eq!(round.frequency_mhz(), Some(mhz));
            assert!((round.voltage_v() - v).abs() < VID_STEP_V, "voltage quantization");
        }
    }

    #[test]
    fn frequency_formula_matches_ppr() {
        // 200 * FID / DID: FID=100, DID=8 -> 2500 MHz.
        let def = PstateDef { fid: 100, did: 8, vid: 88, idd_value: 0, idd_div: 0, enabled: true };
        assert_eq!(def.frequency_mhz(), Some(2500));
        // Divisor of 16 halves the frequency.
        let def = PstateDef { did: 16, ..def };
        assert_eq!(def.frequency_mhz(), Some(1250));
    }

    #[test]
    fn twenty_five_mhz_granularity() {
        // Consecutive FIDs at DID=8 step by exactly 25 MHz (SenseMI /
        // Precision Boost granularity noted in Section III-B).
        let a = PstateDef { fid: 100, did: 8, vid: 0, idd_value: 0, idd_div: 0, enabled: true };
        let b = PstateDef { fid: 101, ..a };
        assert_eq!(b.frequency_mhz().unwrap() - a.frequency_mhz().unwrap(), 25);
    }

    #[test]
    fn disabled_or_zero_did_has_no_frequency() {
        let mut def = PstateDef::for_frequency(2500, 1.0);
        def.enabled = false;
        assert_eq!(def.frequency_mhz(), None);
        let mut def = PstateDef::for_frequency(2500, 1.0);
        def.did = 0;
        assert_eq!(def.frequency_mhz(), None);
    }

    #[test]
    fn voltage_decoding() {
        let def = PstateDef { fid: 0, did: 8, vid: 0, idd_value: 0, idd_div: 0, enabled: true };
        assert!((def.voltage_v() - 1.55).abs() < 1e-9);
        let def = PstateDef { vid: 88, ..def };
        assert!((def.voltage_v() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn idd_field_scaling() {
        let def = PstateDef { fid: 100, did: 8, vid: 88, idd_value: 15, idd_div: 1, enabled: true };
        assert!((def.idd_amps() - 1.5).abs() < 1e-9);
        let decoded = PstateDef::decode(def.encode());
        assert_eq!(decoded.idd_value, 15);
        assert_eq!(decoded.idd_div, 1);
    }

    #[test]
    fn epyc_table_matches_paper_frequencies() {
        let table = PstateTable::epyc_7502();
        assert_eq!(table.frequencies_mhz(), vec![2500, 2200, 1500]);
        assert_eq!(table.index_of_frequency(2200), Some(1));
        assert_eq!(table.index_of_frequency(1800), None);
        assert_eq!(PstateTable::num_pstates_from_cur_lim(table.cur_lim_register()), 3);
    }

    #[test]
    #[should_panic(expected = "25 MHz multiple")]
    fn for_frequency_rejects_off_grid() {
        let _ = PstateDef::for_frequency(2510, 1.0);
    }

    #[test]
    #[should_panic(expected = "at most 8")]
    fn table_rejects_nine_entries() {
        let def = PstateDef::for_frequency(2500, 1.0);
        let _ = PstateTable::new(vec![def; 9]);
    }
}
