//! The C-state base address register.
//!
//! Zen 2 enters idle states either through `monitor`/`mwait` or through
//! reads of I/O addresses in a window defined by `CStateBaseAddr`
//! (Section III-B). On the paper's system the OS C2 state "uses IO address
//! 0x814 in the C-state address range": the base is 0x813 and reading
//! `base + n` requests hardware C-state level `n + 1`.

use serde::{Deserialize, Serialize};

/// Decoded `CStateBaseAddr` register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CstateBaseAddress {
    /// The base I/O port of the C-state trigger window.
    pub base_port: u16,
}

impl Default for CstateBaseAddress {
    fn default() -> Self {
        Self::rome_default()
    }
}

impl CstateBaseAddress {
    /// The base used on the paper's test system (I/O port 0x813, so that
    /// OS C2 maps to port 0x814).
    pub fn rome_default() -> Self {
        Self { base_port: 0x813 }
    }

    /// Encodes into the register format (bits 15:0).
    pub fn encode(&self) -> u64 {
        self.base_port as u64
    }

    /// Decodes from the register format.
    pub fn decode(raw: u64) -> Self {
        Self { base_port: (raw & 0xFFFF) as u16 }
    }

    /// The I/O port whose read requests hardware C-state entry level
    /// `level` (1-based: level 1 = port `base`, level 2 = port `base+1`).
    ///
    /// # Panics
    /// Panics for level 0 (C0 is not entered through the I/O window) or
    /// levels beyond the 8-port window.
    pub fn port_for_level(&self, level: u8) -> u16 {
        assert!((1..=8).contains(&level), "C-state I/O window covers levels 1..=8, got {level}");
        self.base_port + (level as u16 - 1)
    }

    /// The hardware C-state level requested by a read of `port`, if the
    /// port falls inside the window.
    pub fn level_for_port(&self, port: u16) -> Option<u8> {
        let offset = port.checked_sub(self.base_port)?;
        if offset < 8 {
            Some(offset as u8 + 1)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn os_c2_maps_to_port_0x814() {
        // The paper: C2 "uses IO address 0x814".
        let addr = CstateBaseAddress::rome_default();
        assert_eq!(addr.port_for_level(2), 0x814);
        assert_eq!(addr.level_for_port(0x814), Some(2));
    }

    #[test]
    fn encode_decode_round_trip() {
        let addr = CstateBaseAddress { base_port: 0x413 };
        assert_eq!(CstateBaseAddress::decode(addr.encode()), addr);
    }

    #[test]
    fn ports_outside_window_do_not_decode() {
        let addr = CstateBaseAddress::rome_default();
        assert_eq!(addr.level_for_port(0x812), None);
        assert_eq!(addr.level_for_port(0x813 + 8), None);
        assert_eq!(addr.level_for_port(0x813), Some(1));
    }

    #[test]
    #[should_panic(expected = "levels 1..=8")]
    fn level_zero_is_not_a_window_entry() {
        let _ = CstateBaseAddress::rome_default().port_for_level(0);
    }
}
