//! Per-thread MSR register file with `/dev/cpu/N/msr`-like semantics.
//!
//! Software (the experiments) accesses registers through [`MsrFile::read`]
//! and [`MsrFile::write`], which enforce the architectural access rules:
//! unknown registers fault like a #GP, read-only registers reject writes.
//! The simulator plays the hardware role through [`MsrFile::poke`], which
//! bypasses access control to keep status registers coherent with the
//! machine state.

use crate::address as addr;
use crate::cstate_addr::CstateBaseAddress;
use crate::pstate::PstateTable;
use crate::rapl::RaplUnits;
use std::collections::HashMap;
use std::fmt;
use zen2_topology::{ThreadId, Topology};

/// Errors surfaced to software MSR accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsrError {
    /// The register is not implemented on this part; a real `rdmsr`/`wrmsr`
    /// raises #GP and the msr module returns EIO.
    GeneralProtectionFault {
        /// The faulting register address.
        msr: u32,
    },
    /// The register exists but rejects software writes.
    ReadOnly {
        /// The register address.
        msr: u32,
    },
    /// The thread id is outside the machine.
    NoSuchCpu {
        /// The raw thread index.
        thread: u32,
    },
}

impl fmt::Display for MsrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MsrError::GeneralProtectionFault { msr } => {
                write!(f, "rdmsr/wrmsr 0x{msr:08X}: general protection fault (unimplemented)")
            }
            MsrError::ReadOnly { msr } => write!(f, "wrmsr 0x{msr:08X}: register is read-only"),
            MsrError::NoSuchCpu { thread } => write!(f, "no MSR file for thread {thread}"),
        }
    }
}

impl std::error::Error for MsrError {}

/// The set of registers implemented per hardware thread.
fn implemented(msr: u32) -> bool {
    matches!(
        msr,
        addr::TSC
            | addr::MPERF
            | addr::APERF
            | addr::HWCR
            | addr::PSTATE_CUR_LIM
            | addr::PSTATE_CTL
            | addr::PSTATE_STAT
            | addr::CSTATE_BASE_ADDR
            | addr::RAPL_PWR_UNIT
            | addr::CORE_ENERGY_STAT
            | addr::PKG_ENERGY_STAT
    ) || (addr::PSTATE_DEF_BASE..addr::PSTATE_DEF_BASE + addr::NUM_PSTATE_DEFS).contains(&msr)
}

/// Registers that reject software writes. P-state definitions are locked on
/// production parts; status/limit/energy registers are hardware-owned.
fn read_only(msr: u32) -> bool {
    matches!(
        msr,
        addr::PSTATE_CUR_LIM
            | addr::PSTATE_STAT
            | addr::RAPL_PWR_UNIT
            | addr::CORE_ENERGY_STAT
            | addr::PKG_ENERGY_STAT
            | addr::TSC
            | addr::MPERF
            | addr::APERF
    ) || (addr::PSTATE_DEF_BASE..addr::PSTATE_DEF_BASE + addr::NUM_PSTATE_DEFS).contains(&msr)
}

/// Per-thread MSR storage for a whole machine.
#[derive(Debug, Clone)]
pub struct MsrFile {
    per_thread: Vec<HashMap<u32, u64>>,
}

impl MsrFile {
    /// Initializes the register file for a topology with the EPYC 7502
    /// reset values: the paper's three-entry P-state table, AMD RAPL units,
    /// and the Rome C-state I/O window.
    pub fn new(topology: &Topology) -> Self {
        Self::with_pstate_table(topology, &PstateTable::epyc_7502())
    }

    /// Initializes with a caller-provided P-state table.
    pub fn with_pstate_table(topology: &Topology, table: &PstateTable) -> Self {
        let mut template: HashMap<u32, u64> = HashMap::new();
        template.insert(addr::TSC, 0);
        template.insert(addr::MPERF, 0);
        template.insert(addr::APERF, 0);
        template.insert(addr::HWCR, 0);
        template.insert(addr::PSTATE_CUR_LIM, table.cur_lim_register());
        template.insert(addr::PSTATE_CTL, 0);
        template.insert(addr::PSTATE_STAT, 0);
        template.insert(addr::CSTATE_BASE_ADDR, CstateBaseAddress::rome_default().encode());
        template.insert(addr::RAPL_PWR_UNIT, RaplUnits::amd_default().encode());
        template.insert(addr::CORE_ENERGY_STAT, 0);
        template.insert(addr::PKG_ENERGY_STAT, 0);
        for i in 0..addr::NUM_PSTATE_DEFS {
            let raw = table.get(i as usize).map(|d| d.encode()).unwrap_or(0);
            template.insert(addr::pstate_def(i), raw);
        }
        Self { per_thread: vec![template; topology.num_threads()] }
    }

    fn regs(&self, thread: ThreadId) -> Result<&HashMap<u32, u64>, MsrError> {
        self.per_thread.get(thread.index()).ok_or(MsrError::NoSuchCpu { thread: thread.0 })
    }

    fn regs_mut(&mut self, thread: ThreadId) -> Result<&mut HashMap<u32, u64>, MsrError> {
        self.per_thread.get_mut(thread.index()).ok_or(MsrError::NoSuchCpu { thread: thread.0 })
    }

    /// Software read (rdmsr through the msr module).
    pub fn read(&self, thread: ThreadId, msr: u32) -> Result<u64, MsrError> {
        if !implemented(msr) {
            return Err(MsrError::GeneralProtectionFault { msr });
        }
        Ok(*self.regs(thread)?.get(&msr).expect("implemented registers are populated"))
    }

    /// Software write (wrmsr through the msr module).
    pub fn write(&mut self, thread: ThreadId, msr: u32, value: u64) -> Result<(), MsrError> {
        if !implemented(msr) {
            return Err(MsrError::GeneralProtectionFault { msr });
        }
        if read_only(msr) {
            return Err(MsrError::ReadOnly { msr });
        }
        self.regs_mut(thread)?.insert(msr, value);
        Ok(())
    }

    /// Hardware-side write: the simulator keeps status registers coherent.
    ///
    /// # Panics
    /// Panics on unknown threads or unimplemented registers — those are
    /// simulator bugs, not recoverable software errors.
    pub fn poke(&mut self, thread: ThreadId, msr: u32, value: u64) {
        assert!(implemented(msr), "simulator poked unimplemented MSR 0x{msr:08X}");
        self.per_thread[thread.index()].insert(msr, value);
    }

    /// Hardware-side read without access checks.
    ///
    /// # Panics
    /// Panics on unknown threads or unimplemented registers.
    pub fn peek(&self, thread: ThreadId, msr: u32) -> u64 {
        assert!(implemented(msr), "simulator peeked unimplemented MSR 0x{msr:08X}");
        self.per_thread[thread.index()][&msr]
    }

    /// Adds a counter increment to a hardware-owned register (TSC, APERF,
    /// MPERF, energy counters), wrapping at the register's natural width.
    pub fn bump(&mut self, thread: ThreadId, msr: u32, delta: u64, width_bits: u32) {
        let old = self.peek(thread, msr);
        let mask = if width_bits >= 64 { u64::MAX } else { (1u64 << width_bits) - 1 };
        self.poke(thread, msr, old.wrapping_add(delta) & mask);
    }

    /// Number of per-thread register files.
    pub fn num_threads(&self) -> usize {
        self.per_thread.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pstate::PstateTable;

    fn file() -> MsrFile {
        MsrFile::new(&Topology::epyc_7502_2s())
    }

    #[test]
    fn reset_values_expose_paper_pstate_table() {
        let f = file();
        let t0 = ThreadId(0);
        let lim = f.read(t0, addr::PSTATE_CUR_LIM).unwrap();
        assert_eq!(PstateTable::num_pstates_from_cur_lim(lim), 3);
        let p0 = crate::PstateDef::decode(f.read(t0, addr::pstate_def(0)).unwrap());
        assert_eq!(p0.frequency_mhz(), Some(2500));
        let p2 = crate::PstateDef::decode(f.read(t0, addr::pstate_def(2)).unwrap());
        assert_eq!(p2.frequency_mhz(), Some(1500));
        // Undefined table slots decode as disabled.
        let p7 = crate::PstateDef::decode(f.read(t0, addr::pstate_def(7)).unwrap());
        assert!(!p7.enabled);
    }

    #[test]
    fn unimplemented_msr_faults_like_gp() {
        let f = file();
        let err = f.read(ThreadId(0), addr::INTEL_PKG_ENERGY_STATUS).unwrap_err();
        assert_eq!(err, MsrError::GeneralProtectionFault { msr: 0x611 });
        assert!(err.to_string().contains("general protection"));
    }

    #[test]
    fn status_registers_reject_software_writes() {
        let mut f = file();
        for msr in [addr::PSTATE_STAT, addr::CORE_ENERGY_STAT, addr::RAPL_PWR_UNIT, addr::APERF] {
            assert_eq!(
                f.write(ThreadId(3), msr, 1).unwrap_err(),
                MsrError::ReadOnly { msr },
                "0x{msr:08X}"
            );
        }
        // PStateCtl is the software knob and accepts writes.
        f.write(ThreadId(3), addr::PSTATE_CTL, 2).unwrap();
        assert_eq!(f.read(ThreadId(3), addr::PSTATE_CTL).unwrap(), 2);
    }

    #[test]
    fn pstate_defs_are_locked() {
        let mut f = file();
        let err = f.write(ThreadId(0), addr::pstate_def(0), 0).unwrap_err();
        assert_eq!(err, MsrError::ReadOnly { msr: addr::pstate_def(0) });
    }

    #[test]
    fn poke_updates_hardware_owned_state() {
        let mut f = file();
        f.poke(ThreadId(9), addr::PSTATE_STAT, 2);
        assert_eq!(f.read(ThreadId(9), addr::PSTATE_STAT).unwrap(), 2);
        // Other threads are unaffected.
        assert_eq!(f.read(ThreadId(8), addr::PSTATE_STAT).unwrap(), 0);
    }

    #[test]
    fn bump_wraps_at_register_width() {
        let mut f = file();
        f.poke(ThreadId(0), addr::CORE_ENERGY_STAT, u32::MAX as u64);
        f.bump(ThreadId(0), addr::CORE_ENERGY_STAT, 5, 32);
        assert_eq!(f.peek(ThreadId(0), addr::CORE_ENERGY_STAT), 4);
        f.poke(ThreadId(0), addr::APERF, u64::MAX);
        f.bump(ThreadId(0), addr::APERF, 2, 64);
        assert_eq!(f.peek(ThreadId(0), addr::APERF), 1);
    }

    #[test]
    fn out_of_range_thread_errors() {
        let f = file();
        assert_eq!(
            f.read(ThreadId(128), addr::TSC).unwrap_err(),
            MsrError::NoSuchCpu { thread: 128 }
        );
    }

    #[test]
    fn per_thread_isolation() {
        let mut f = file();
        f.write(ThreadId(0), addr::PSTATE_CTL, 1).unwrap();
        f.write(ThreadId(1), addr::PSTATE_CTL, 2).unwrap();
        assert_eq!(f.read(ThreadId(0), addr::PSTATE_CTL).unwrap(), 1);
        assert_eq!(f.read(ThreadId(1), addr::PSTATE_CTL).unwrap(), 2);
        assert_eq!(f.num_threads(), 128);
    }
}
