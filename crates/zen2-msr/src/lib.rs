//! Family-17h (Zen 2) model-specific registers.
//!
//! The paper performs all of its low-level configuration and observation
//! through MSRs, accessed "via the msr kernel module" (Section IV). This
//! crate is the stand-in for that hardware/kernel interface: it provides
//!
//! * the Family-17h register addresses the paper touches
//!   ([`address`]: P-state definition/control/status/limit registers, the
//!   C-state base address register, the RAPL unit and energy counters,
//!   APERF/MPERF),
//! * bit-accurate encode/decode helpers for the P-state definition format
//!   (FID/DID/VID — [`pstate::PstateDef`]) and the RAPL unit register
//!   ([`rapl::RaplUnits`]),
//! * a per-thread register file ([`MsrFile`]) with read-only enforcement
//!   and #GP-like errors for unknown registers, mirroring `/dev/cpu/N/msr`
//!   semantics.
//!
//! The simulator (`zen2-sim`) keeps these registers coherent with its
//! internal state machines; experiments read and write them exactly like
//! the paper's tooling did.

pub mod address;
pub mod cstate_addr;
pub mod file;
pub mod pstate;
pub mod rapl;

#[cfg(test)]
mod proptests;

pub use cstate_addr::CstateBaseAddress;
pub use file::{MsrError, MsrFile};
pub use pstate::{PstateDef, PstateTable};
pub use rapl::RaplUnits;
