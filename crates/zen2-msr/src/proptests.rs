//! Property-based tests of the register encodings and the MSR file.

use crate::address;
use crate::cstate_addr::CstateBaseAddress;
use crate::file::{MsrError, MsrFile};
use crate::pstate::PstateDef;
use crate::rapl::{counter_delta, RaplUnits};
use proptest::prelude::*;
use zen2_topology::{ThreadId, Topology};

proptest! {
    #![proptest_config(ProptestConfig { cases: 256 })]

    /// P-state definitions round-trip through the register encoding for
    /// every field combination.
    #[test]
    fn pstate_def_round_trips(fid in 0u8..=255, did in 0u8..=63, vid in 0u8..=255,
                              idd_value in 0u8..=63, idd_div in 0u8..=3,
                              enabled in any::<bool>()) {
        let def = PstateDef { fid, did, vid, idd_value, idd_div, enabled };
        prop_assert_eq!(PstateDef::decode(def.encode()), def);
    }

    /// `for_frequency` produces a definition whose decoded frequency and
    /// voltage match the request (within one VID step).
    #[test]
    fn for_frequency_is_faithful(steps in 1u32..=255, v_raw in 0.0f64..=1.54) {
        let mhz = steps * 25;
        let def = PstateDef::for_frequency(mhz, v_raw);
        prop_assert_eq!(def.frequency_mhz(), Some(mhz));
        prop_assert!((def.voltage_v() - v_raw).abs() <= crate::pstate::VID_STEP_V / 2.0 + 1e-12);
    }

    /// RAPL unit registers round-trip and unit conversion is consistent.
    #[test]
    fn rapl_units_round_trip(pu in 0u8..=15, esu in 0u8..=31, tu in 0u8..=15) {
        let u = RaplUnits { power_unit: pu, energy_unit: esu, time_unit: tu };
        prop_assert_eq!(RaplUnits::decode(u.encode()), u);
        let j = 3.75;
        let back = u.counts_to_joules(u.joules_to_counts(j));
        prop_assert!(back <= j + 1e-12);
        prop_assert!(j - back <= u.joules_per_count());
    }

    /// Counter deltas are exact under arbitrary wraparound.
    #[test]
    fn counter_delta_is_exact(start in any::<u32>(), add in 0u64..=u32::MAX as u64) {
        let end = (start as u64).wrapping_add(add) as u32;
        prop_assert_eq!(counter_delta(start, end), add);
    }

    /// C-state window ports round-trip for every level.
    #[test]
    fn cstate_window_round_trips(base in 0u16..=0xFF00, level in 1u8..=8) {
        let addr = CstateBaseAddress { base_port: base };
        let port = addr.port_for_level(level);
        prop_assert_eq!(addr.level_for_port(port), Some(level));
    }

    /// Software writes to writable registers are read back verbatim per
    /// thread; read-only and unknown registers error deterministically.
    #[test]
    fn msr_file_semantics(thread in 0u32..128, value in any::<u64>()) {
        let topo = Topology::epyc_7502_2s();
        let mut file = MsrFile::new(&topo);
        let t = ThreadId(thread);
        file.write(t, address::PSTATE_CTL, value).unwrap();
        prop_assert_eq!(file.read(t, address::PSTATE_CTL).unwrap(), value);
        // Neighbors are untouched.
        let other = ThreadId((thread + 1) % 128);
        prop_assert_eq!(file.read(other, address::PSTATE_CTL).unwrap(), 0);
        prop_assert_eq!(
            file.write(t, address::PKG_ENERGY_STAT, value).unwrap_err(),
            MsrError::ReadOnly { msr: address::PKG_ENERGY_STAT }
        );
    }

    /// `bump` with arbitrary deltas always stays within the register width.
    #[test]
    fn bump_respects_width(start in any::<u64>(), delta in any::<u64>()) {
        let topo = Topology::epyc_7502_2s();
        let mut file = MsrFile::new(&topo);
        file.poke(ThreadId(0), address::CORE_ENERGY_STAT, start & 0xFFFF_FFFF);
        file.bump(ThreadId(0), address::CORE_ENERGY_STAT, delta, 32);
        prop_assert!(file.peek(ThreadId(0), address::CORE_ENERGY_STAT) <= u32::MAX as u64);
    }
}
